"""The core :class:`Graph` type.

Graphs are undirected, optionally edge-weighted, with vertices indexed
``0..n-1`` and optional integer vertex labels. Instances are value objects:
the adjacency matrix is copied in and marked read-only, and derived
quantities (degrees, shortest paths) are memoised per instance.

The HAQJSK paper targets *un-attributed* graphs; vertex labels are carried
for the attributed baselines (WLSK, SPGK on labelled data) and for datasets
such as MUTAG/PTC whose vertices are labelled (Table II).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError, ValidationError
from repro.utils.caching import cached_on_instance

_ADJ_TOL = 1e-12


class Graph:
    """An undirected (weighted) graph over vertices ``0..n-1``.

    Parameters
    ----------
    adjacency:
        Square symmetric matrix of non-negative edge weights. A zero entry
        means "no edge"; the diagonal must be zero (no self loops).
    labels:
        Optional per-vertex integer labels, length ``n``. ``None`` marks the
        graph as un-attributed; kernels that need labels fall back to vertex
        degrees, following the paper's protocol for unlabelled datasets.
    name:
        Optional human-readable identifier (used in error messages only).
    """

    __slots__ = ("_adjacency", "_labels", "name", "__dict__")

    def __init__(
        self,
        adjacency: np.ndarray,
        labels: "Sequence[int] | None" = None,
        name: str = "",
    ) -> None:
        arr = np.asarray(adjacency, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise GraphError(f"adjacency must be square, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise GraphError("adjacency contains non-finite entries")
        if arr.size and not np.allclose(arr, arr.T, atol=1e-9):
            raise GraphError("adjacency must be symmetric (undirected graph)")
        if arr.size and np.any(arr < -_ADJ_TOL):
            raise GraphError("adjacency must have non-negative weights")
        if arr.size and np.any(np.abs(np.diag(arr)) > _ADJ_TOL):
            raise GraphError("self loops are not supported (non-zero diagonal)")
        arr = (arr + arr.T) / 2.0
        arr[np.abs(arr) <= _ADJ_TOL] = 0.0
        np.fill_diagonal(arr, 0.0)
        arr.setflags(write=False)
        self._adjacency = arr

        if labels is not None:
            label_arr = np.asarray(labels, dtype=int)
            if label_arr.ndim != 1 or label_arr.shape[0] != arr.shape[0]:
                raise GraphError(
                    f"labels must have length {arr.shape[0]}, got shape {label_arr.shape}"
                )
            label_arr.setflags(write=False)
            self._labels = label_arr
        else:
            self._labels = None
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def adjacency(self) -> np.ndarray:
        """Read-only adjacency matrix (n x n, float weights)."""
        return self._adjacency

    @property
    def labels(self) -> "np.ndarray | None":
        """Per-vertex integer labels, or ``None`` for un-attributed graphs."""
        return self._labels

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self._adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges (weight > 0)."""
        return int(np.count_nonzero(np.triu(self._adjacency, k=1)))

    @property
    def is_weighted(self) -> bool:
        """True if any edge weight differs from 1."""
        weights = self._adjacency[self._adjacency > 0]
        return bool(weights.size and not np.allclose(weights, 1.0))

    def __len__(self) -> int:
        return self.n_vertices

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"Graph(n={self.n_vertices}, m={self.n_edges}{tag})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.n_vertices != other.n_vertices:
            return False
        if not np.array_equal(self._adjacency, other._adjacency):
            return False
        if (self._labels is None) != (other._labels is None):
            return False
        if self._labels is not None and not np.array_equal(self._labels, other._labels):
            return False
        return True

    def __hash__(self) -> int:
        label_bytes = b"" if self._labels is None else self._labels.tobytes()
        return hash((self._adjacency.tobytes(), label_bytes))

    # ------------------------------------------------------------------ #
    # Derived structural quantities (memoised)
    # ------------------------------------------------------------------ #

    @cached_on_instance
    def degrees(self) -> np.ndarray:
        """Weighted vertex degrees (row sums of the adjacency matrix)."""
        out = self._adjacency.sum(axis=1)
        out.setflags(write=False)
        return out

    @cached_on_instance
    def unweighted_degrees(self) -> np.ndarray:
        """Number of neighbours per vertex, ignoring weights."""
        out = (self._adjacency > 0).sum(axis=1).astype(float)
        out.setflags(write=False)
        return out

    @cached_on_instance
    def laplacian(self) -> np.ndarray:
        """Combinatorial Laplacian ``L = D - A`` (the paper's Hamiltonian)."""
        lap = np.diag(self.degrees()) - self._adjacency
        lap.setflags(write=False)
        return lap

    @cached_on_instance
    def shortest_path_lengths(self) -> np.ndarray:
        """All-pairs hop distances (BFS on the unweighted skeleton).

        Unreachable pairs get ``-1``. Weights are ignored: the paper's DB
        representations and shortest-path kernels use hop counts.
        """
        n = self.n_vertices
        dist = np.full((n, n), -1, dtype=np.int64)
        neighbor_lists = self.neighbor_lists()
        for source in range(n):
            row = dist[source]
            row[source] = 0
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                next_frontier = []
                for u in frontier:
                    for v in neighbor_lists[u]:
                        if row[v] < 0:
                            row[v] = depth
                            next_frontier.append(v)
                frontier = next_frontier
        dist.setflags(write=False)
        return dist

    @cached_on_instance
    def neighbor_lists(self) -> list:
        """Adjacency lists (list of int lists), ignoring weights."""
        return [np.flatnonzero(self._adjacency[u] > 0).tolist() for u in range(self.n_vertices)]

    def neighbors(self, vertex: int) -> list:
        """Neighbours of ``vertex`` as a list of ints."""
        self._check_vertex(vertex)
        return list(self.neighbor_lists()[vertex])

    def eccentricities(self) -> np.ndarray:
        """Per-vertex eccentricity; ``-1`` for vertices in disconnected graphs."""
        dist = self.shortest_path_lengths()
        if self.n_vertices == 0:
            return np.empty(0, dtype=np.int64)
        if np.any(dist < 0):
            return np.full(self.n_vertices, -1, dtype=np.int64)
        return dist.max(axis=1)

    def diameter(self) -> int:
        """Longest shortest path; ``-1`` if the graph is disconnected/empty."""
        ecc = self.eccentricities()
        if ecc.size == 0 or np.any(ecc < 0):
            return -1
        return int(ecc.max())

    def effective_labels(self) -> np.ndarray:
        """Vertex labels, falling back to unweighted degrees when unlabelled.

        This mirrors the paper's protocol (Table II footnote): datasets with
        no vertex labels use vertex degrees as the labels.
        """
        if self._labels is not None:
            return np.asarray(self._labels, dtype=int)
        return self.unweighted_degrees().astype(int)

    # ------------------------------------------------------------------ #
    # Structure-producing operations
    # ------------------------------------------------------------------ #

    def edges(self) -> Iterator[tuple]:
        """Iterate undirected edges as ``(u, v, weight)`` with ``u < v``."""
        upper = np.triu(self._adjacency, k=1)
        for u, v in zip(*np.nonzero(upper)):
            yield int(u), int(v), float(upper[u, v])

    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Vertex-induced subgraph, re-indexed to ``0..k-1`` in given order."""
        idx = np.asarray(list(vertices), dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_vertices):
            raise GraphError("subgraph vertices out of range")
        if len(set(idx.tolist())) != idx.size:
            raise GraphError("subgraph vertices must be unique")
        sub_adj = self._adjacency[np.ix_(idx, idx)]
        sub_labels = None if self._labels is None else self._labels[idx]
        return Graph(sub_adj, labels=sub_labels, name=self.name)

    def expansion_subgraph(self, root: int, layer: int) -> "Graph":
        """The ``layer``-layer expansion subgraph rooted at ``root``.

        Induced on all vertices within hop distance ``<= layer`` of the root —
        the substructure underlying the depth-based representations
        (paper Section III-A, following Bai & Hancock 2014).
        """
        self._check_vertex(root)
        if layer < 0:
            raise ValidationError(f"layer must be >= 0, got {layer}")
        dist_from_root = self.shortest_path_lengths()[root]
        members = np.flatnonzero((dist_from_root >= 0) & (dist_from_root <= layer))
        return self.subgraph(members)

    def permuted(self, permutation: Sequence[int]) -> "Graph":
        """Relabel vertices: new vertex ``i`` is old vertex ``permutation[i]``."""
        perm = np.asarray(permutation, dtype=int)
        if perm.shape != (self.n_vertices,) or sorted(perm.tolist()) != list(
            range(self.n_vertices)
        ):
            raise GraphError("permutation must be a rearrangement of 0..n-1")
        new_adj = self._adjacency[np.ix_(perm, perm)]
        new_labels = None if self._labels is None else self._labels[perm]
        return Graph(new_adj, labels=new_labels, name=self.name)

    def with_labels(self, labels: "Sequence[int] | None") -> "Graph":
        """Copy of this graph with different (or removed) vertex labels."""
        return Graph(self._adjacency, labels=labels, name=self.name)

    def connected_components(self) -> list:
        """Connected components as lists of vertex indices (each sorted)."""
        n = self.n_vertices
        seen = np.zeros(n, dtype=bool)
        components: list = []
        neighbor_lists = self.neighbor_lists()
        for start in range(n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                u = stack.pop()
                component.append(u)
                for v in neighbor_lists[u]:
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """True for the empty graph and any single-component graph."""
        return self.n_vertices == 0 or len(self.connected_components()) == 1

    def largest_component(self) -> "Graph":
        """The subgraph induced on the largest connected component."""
        components = self.connected_components()
        if not components:
            return self
        biggest = max(components, key=len)
        return self.subgraph(biggest)

    # ------------------------------------------------------------------ #
    # Interop
    # ------------------------------------------------------------------ #

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (weights + ``label`` attrs)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n_vertices))
        if self._labels is not None:
            for v in range(self.n_vertices):
                g.nodes[v]["label"] = int(self._labels[v])
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    @classmethod
    def from_networkx(cls, nx_graph, *, label_attr: str = "label") -> "Graph":
        """Build from a networkx graph; nodes are re-indexed to 0..n-1."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        adjacency = np.zeros((n, n))
        for u, v, data in nx_graph.edges(data=True):
            if u == v:
                continue
            weight = float(data.get("weight", 1.0))
            adjacency[index[u], index[v]] = weight
            adjacency[index[v], index[u]] = weight
        labels = None
        if all(label_attr in nx_graph.nodes[node] for node in nodes) and n > 0:
            labels = [int(nx_graph.nodes[node][label_attr]) for node in nodes]
        return cls(adjacency, labels=labels)

    # ------------------------------------------------------------------ #
    # Internal
    # ------------------------------------------------------------------ #

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= int(vertex) < self.n_vertices):
            raise GraphError(
                f"vertex {vertex} out of range for graph with {self.n_vertices} vertices"
            )
