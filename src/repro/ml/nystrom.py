"""Nyström low-rank approximation of graph-kernel Gram matrices.

Section III-D puts the HAQJSK kernels at O(N²n³): the quadratic factor is
the pairwise QJSD evaluation, one mixed-state eigendecomposition per graph
pair. The classical Nyström method (Williams & Seeger, 2001) replaces the
N² pair evaluations with N·m against ``m << N`` landmark graphs:

    K  ≈  C W⁺ Cᵀ,     C = K(X, L) ∈ R^{N×m},  W = K(L, L) ∈ R^{m×m},

with the pseudo-inverse taken on W's positive spectrum. Equivalently, each
graph gets an explicit m-dimensional feature vector ``Φ = C W^{-1/2}`` with
``Φ Φᵀ = K̂`` — directly usable by the linear stages downstream (SVM on a
precomputed approximate Gram, kernel PCA, k-NN).

For :class:`~repro.kernels.base.PairwiseKernel` instances (the QJSD
family) the collection is prepared once and only the required N·m pair
values are evaluated, so the saving is real, not cosmetic. Collection-level
kernels keep their semantics: landmarks are *part of the collection* the
prototype system is fitted on.
"""

from __future__ import annotations

import numpy as np

from repro.api.context import context_for, resolve_context
from repro.engine.base import GramEngine
from repro.errors import KernelError, NotFittedError, ValidationError
from repro.kernels.base import GraphKernel, PairwiseKernel
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

#: Relative eigenvalue cutoff for W's pseudo-inverse square root.
_SPECTRUM_TOL = 1e-10


class NystromApproximation:
    """Low-rank Gram approximation from ``n_landmarks`` landmark graphs.

    Parameters
    ----------
    kernel:
        Any :class:`GraphKernel`. Pairwise kernels take the efficient
        path (one ``prepare``, N·m pair values evaluated through the
        Gram engine); other kernels fall back to ``gram`` calls.
    n_landmarks:
        Number of landmark graphs ``m``. ``m = N`` reproduces the exact
        Gram matrix (up to the PSD projection inherent in W⁺).
    seed:
        Seeds the uniform landmark sampling.
    ctx:
        :class:`~repro.api.ExecutionContext` carrying the backend for
        the ``K(X, L)`` evaluation (ignored for feature-map kernels) and
        an optional store: with one, the rectangle — the expensive N·m
        pair stage — is fetched by content key (kernel fingerprint +
        collection digest + landmark indices) and persisted on miss, so
        refitting over the same collection and seed is free.
    engine / store:
        *Deprecated* (pass ``ctx=``): the loose spellings of the same
        two knobs.

    Attributes (after :meth:`fit`)
    ------------------------------
    landmark_indices_:  indices of the selected landmark graphs.
    landmark_graphs_:   the landmark graphs themselves (the fitted
                        landmark system :meth:`transform` embeds against).
    embedding_:         ``(N, r)`` feature matrix with ``Φ Φᵀ = K̂``
                        (``r`` = numerical rank of W).
    """

    def __init__(
        self,
        kernel: GraphKernel,
        *,
        n_landmarks: int,
        seed: "int | None" = 0,
        engine: "GramEngine | str | None" = None,
        store=None,
        ctx=None,
    ) -> None:
        if not isinstance(kernel, GraphKernel):
            raise ValidationError(
                f"kernel must be a GraphKernel, got {type(kernel).__name__}"
            )
        ctx = resolve_context(
            ctx, owner="NystromApproximation", engine=engine, store=store
        )
        if ctx is not None:
            engine = ctx.engine_argument(kernel)
            store = ctx.store
        self.kernel = kernel
        self.n_landmarks = check_positive_int(
            n_landmarks, "n_landmarks", minimum=1
        )
        self.seed = seed
        self.engine = engine
        self.store = store
        self.landmark_indices_: "np.ndarray | None" = None
        self.landmark_graphs_: "list | None" = None
        self.embedding_: "np.ndarray | None" = None
        self._inv_sqrt: "np.ndarray | None" = None

    def fit(self, graphs: list) -> "NystromApproximation":
        """Select landmarks, evaluate C and W, and build the embedding."""
        if not graphs:
            raise ValidationError("need a non-empty graph list")
        n = len(graphs)
        m = min(self.n_landmarks, n)
        rng = as_rng(self.seed)
        self.landmark_indices_ = np.sort(rng.choice(n, size=m, replace=False))
        cross = self._cross_matrix(graphs, self.landmark_indices_)
        w_matrix = cross[self.landmark_indices_]
        # Symmetric pseudo-inverse square root of W on its positive spectrum.
        values, vectors = np.linalg.eigh((w_matrix + w_matrix.T) / 2.0)
        cutoff = max(values.max(), 0.0) * _SPECTRUM_TOL
        keep = values > cutoff
        inv_sqrt = vectors[:, keep] / np.sqrt(values[keep])[None, :]
        self.landmark_graphs_ = [graphs[i] for i in self.landmark_indices_]
        self._inv_sqrt = inv_sqrt
        self.embedding_ = cross @ inv_sqrt
        return self

    def transform(self, graphs: list) -> np.ndarray:
        """Out-of-sample ``(n_new, r)`` embeddings against the fitted
        landmark system — the Nyström serving path.

        Each newcomer ``g`` gets ``φ(g) = K(g, L) W^{-1/2}`` from the
        *fitted* landmarks and spectrum, so new embeddings live in the
        same ``r``-dimensional space as :attr:`embedding_` and inner
        products approximate kernel values against the fitted collection.
        Only ``n_new · m`` pair values are evaluated.

        Requires a collection-independent kernel (feature maps, the QJSD
        family, frozen-prototype HAQJSK): for a kernel that refits
        collection state per call, newcomer columns would be computed
        against different landmarks than ``W`` was, so the method refuses
        with the same named error as ``gram_extend``. Downstream
        conditioning of serving-time approximate Gram rows must use a
        :class:`~repro.ml.kernel_utils.GramConditioner` fitted on the
        training approximation, never fresh statistics.
        """
        if self.embedding_ is None or self._inv_sqrt is None:
            raise NotFittedError("NystromApproximation must be fitted first")
        # Eligibility before the empty-batch shortcut: an ineligible
        # pipeline must fail on its smoke input, not only in production.
        if not self.kernel.collection_independent:
            hint = getattr(self.kernel, "_extension_hint", "")
            raise KernelError(
                f"{self.kernel.name}: out-of-sample Nyström embeddings "
                f"need collection-independent kernel values; this kernel "
                f"refits collection state per call."
                + (f" {hint}" if hint else "")
            )
        graphs = list(graphs)
        if not graphs:
            return np.zeros((0, self._inv_sqrt.shape[1]))
        if hasattr(self.kernel, "cross_gram"):
            cross = self.kernel.cross_gram(
                graphs, self.landmark_graphs_, ctx=context_for(engine=self.engine)
            )
        else:  # pragma: no cover - every shipped kernel has cross_gram
            full = self.kernel.gram(graphs + self.landmark_graphs_)
            cross = full[: len(graphs), len(graphs) :]
        return np.asarray(cross, dtype=float) @ self._inv_sqrt

    def approximate_gram(self) -> np.ndarray:
        """The ``N x N`` approximation ``K̂ = Φ Φᵀ`` (PSD by construction)."""
        if self.embedding_ is None:
            raise NotFittedError("NystromApproximation must be fitted first")
        return self.embedding_ @ self.embedding_.T

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _cross_matrix(self, graphs: list, landmarks: np.ndarray) -> np.ndarray:
        """``K(X, L)`` with one collection-level preparation if possible."""
        key = None
        if self.store is not None:
            from repro.graphs.hashing import collection_digest
            from repro.store import artifact_key

            key = artifact_key(
                "nystrom-cross",
                self.kernel.fingerprint(),
                collection_digest(graphs),
                ",".join(str(int(i)) for i in landmarks),
            )
            cached = self.store.get_array("nystrom", key)
            if cached is not None:
                return cached
        cross = self._compute_cross_matrix(graphs, landmarks)
        if key is not None:
            self.store.put_array("nystrom", key, cross)
        return cross

    def _compute_cross_matrix(
        self, graphs: list, landmarks: np.ndarray
    ) -> np.ndarray:
        if isinstance(self.kernel, PairwiseKernel):
            states = self.kernel.prepare(list(graphs))
            landmark_states = [states[i] for i in landmarks]
            # The N x m rectangle goes through the same engine backends
            # (and tile plans) as a full Gram, so landmark columns get
            # the batched path. With a store, every finished tile commits
            # through a CheckpointSink: a killed fit resumes the N·m pair
            # stage at tile granularity instead of restarting it.
            engine = self.kernel._resolve_engine(self.engine)
            sink = None
            if self.store is not None:
                from repro.store.tiles import CheckpointSink, tile_keyer_for

                sink = CheckpointSink(
                    self.store,
                    tile_keyer_for(
                        self.kernel,
                        graphs,
                        [graphs[i] for i in landmarks],
                        collection=graphs,
                    ),
                )
            cross = np.asarray(
                engine.cross_gram(
                    self.kernel, states, landmark_states, sink=sink
                ),
                dtype=float,
            )
            if sink is not None and not self.kernel.collection_independent:
                # Collection-dependent tile keys embed the collection
                # digest: once the rectangle is assembled (and about to be
                # cached whole under its own key) no other computation can
                # read them — reclaim instead of leaking per sweep.
                sink.discard_tiles()
            return cross
        # Generic fallback: one full-collection Gram, sliced. Exact but not
        # cheaper — feature-map kernels are already linear in N.
        full = self.kernel.gram(list(graphs))
        return full[:, landmarks]


def nystrom_gram(
    kernel: GraphKernel,
    graphs: list,
    *,
    n_landmarks: int,
    seed: "int | None" = 0,
    engine: "GramEngine | str | None" = None,
    store=None,
    ctx=None,
) -> np.ndarray:
    """One-shot Nyström approximation of ``kernel.gram(graphs)``."""
    approximation = NystromApproximation(
        kernel, n_landmarks=n_landmarks, seed=seed, engine=engine, store=store,
        ctx=ctx,
    ).fit(graphs)
    return approximation.approximate_gram()
