"""The paper's evaluation protocol: repeated stratified 10-fold CV.

Section IV-B: "we perform the 10-fold cross-validation strategy to compute
the classification accuracy through the C-SVM associated with the graph
kernels. For each kernel, we employ the optimal C-SVM parameters and repeat
the experiment for 10 times"; the reported numbers are mean accuracy ±
standard error.

``C`` is selected per training fold by an inner stratified CV over a
logarithmic grid, so no test information leaks into model selection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.ml.kernel_utils import GramConditioner
from repro.ml.metrics import CVResult, accuracy, summarize_repeats
from repro.ml.multiclass import KernelSVC
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_positive_int

#: The default C grid, matching common LIBSVM protocol on graph kernels
#: (log-spaced; the upper decades matter for low-signal Gram matrices).
DEFAULT_C_GRID = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


def stratified_k_fold(labels, n_folds: int, *, seed=None) -> list:
    """Index splits ``[(train, test), ...]`` preserving class proportions.

    Every class must have at least one member; classes smaller than
    ``n_folds`` simply appear in fewer test folds.
    """
    y = np.asarray(labels)
    n_folds = check_positive_int(n_folds, "n_folds", minimum=2)
    if y.ndim != 1 or y.size < n_folds:
        raise ValidationError(
            f"need at least n_folds={n_folds} samples, got {y.size}"
        )
    rng = as_rng(seed)
    fold_members: list = [[] for _ in range(n_folds)]
    cursor = 0
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        members = members[rng.permutation(members.size)]
        for member in members:
            fold_members[cursor % n_folds].append(int(member))
            cursor += 1
    splits = []
    all_indices = set(range(y.size))
    for fold in fold_members:
        if not fold:
            continue
        test = np.asarray(sorted(fold), dtype=int)
        train = np.asarray(sorted(all_indices - set(fold)), dtype=int)
        splits.append((train, test))
    return splits


def _fit_predict(gram, y, train, test, c) -> np.ndarray:
    model = KernelSVC(c=c)
    model.fit(gram[np.ix_(train, train)], y[train])
    return model.predict(gram[np.ix_(test, train)])


def select_c(
    gram: np.ndarray,
    labels: np.ndarray,
    train: np.ndarray,
    *,
    c_grid=DEFAULT_C_GRID,
    inner_folds: int = 3,
    seed=None,
) -> float:
    """Pick ``C`` by inner stratified CV restricted to the training indices."""
    y = np.asarray(labels)
    rng = as_rng(seed)
    sub_y = y[train]
    # Guard: inner folds need every class at least twice for a meaningful
    # split; fall back to the grid midpoint otherwise.
    _, counts = np.unique(sub_y, return_counts=True)
    if counts.min() < 2 or train.size < inner_folds * 2:
        return float(c_grid[len(c_grid) // 2])
    splits = stratified_k_fold(sub_y, inner_folds, seed=spawn_seed(rng))
    best_c, best_score = float(c_grid[0]), -1.0
    for c in c_grid:
        scores = []
        for inner_train, inner_test in splits:
            if np.unique(sub_y[inner_train]).size < 2:
                continue
            predictions = _fit_predict(
                gram[np.ix_(train, train)], sub_y, inner_train, inner_test, c
            )
            scores.append(accuracy(sub_y[inner_test], predictions))
        score = float(np.mean(scores)) if scores else -1.0
        if score > best_score:
            best_score, best_c = score, float(c)
    return best_c


def cross_validate_kernel(
    gram: np.ndarray,
    labels,
    *,
    n_folds: int = 10,
    n_repeats: int = 10,
    c_grid=DEFAULT_C_GRID,
    inner_folds: int = 3,
    select_per_fold: bool = False,
    seed=0,
) -> CVResult:
    """The paper's protocol on one precomputed Gram matrix.

    Parameters
    ----------
    select_per_fold:
        If True, re-select ``C`` inside every outer training fold (slow,
        fully leakage-free). The default selects ``C`` once per repeat on
        the first training fold, a common compromise that keeps Table IV
        affordable; the two options agree within noise on every dataset we
        checked (see EXPERIMENTS.md).
    """
    k_matrix = np.asarray(gram, dtype=float)
    y = np.asarray(labels)
    if k_matrix.shape != (y.size, y.size):
        raise ValidationError(
            f"gram {k_matrix.shape} incompatible with labels {y.shape}"
        )
    n_repeats = check_positive_int(n_repeats, "n_repeats", minimum=1)
    rng = as_rng(seed)
    per_repeat = []
    chosen_cs = []
    for _ in range(n_repeats):
        splits = stratified_k_fold(y, n_folds, seed=spawn_seed(rng))
        fold_accuracies = []
        repeat_c: "float | None" = None
        for train, test in splits:
            if np.unique(y[train]).size < 2:
                continue
            if select_per_fold or repeat_c is None:
                repeat_c = select_c(
                    k_matrix,
                    y,
                    train,
                    c_grid=c_grid,
                    inner_folds=inner_folds,
                    seed=spawn_seed(rng),
                )
                chosen_cs.append(repeat_c)
            predictions = _fit_predict(k_matrix, y, train, test, repeat_c)
            fold_accuracies.append(accuracy(y[test], predictions))
        if fold_accuracies:
            per_repeat.append(float(np.mean(fold_accuracies)))
    best_c = float(np.median(chosen_cs)) if chosen_cs else float("nan")
    return summarize_repeats(per_repeat, best_c)


def cross_validate_graph_kernel(
    kernel,
    graphs,
    labels,
    *,
    ctx=None,
    engine=None,
    normalize: "bool | None" = None,
    ensure_psd: "bool | None" = None,
    condition: bool = True,
    store=None,
    tile_checkpoint: "bool | None" = None,
    sink=None,
    **cv_kwargs,
) -> CVResult:
    """End-to-end protocol from graphs: Gram -> conditioning -> repeated CV.

    Convenience wrapper tying the kernel layer to the evaluation
    protocol: the Gram matrix is computed under the supplied
    :class:`~repro.api.context.ExecutionContext` (``ctx=None`` means the
    historical defaults — sticky/process-default backend, no
    persistence), optionally conditioned with a
    :class:`repro.ml.kernel_utils.GramConditioner`, and handed to
    :func:`cross_validate_kernel` with any remaining keyword arguments
    (``n_folds``, ``n_repeats``, ``seed``, ...). ``normalize`` defaults
    to the context policy, else on — the paper's protocol.

    The context's fields select the execution strategy (the loose
    ``engine=`` / ``store=`` / ``tile_checkpoint=`` / ``sink=`` keywords
    are deprecated shims building an equivalent context):

    * ``ctx.store`` (a :class:`repro.store.ArtifactStore`) makes the
      Gram step persistent: the matrix is fetched by content key —
      kernel fingerprint + collection digest + options — and only
      computed (then persisted) on a miss, so repeated protocol runs and
      interrupted experiment sweeps skip straight past completed Grams.
      On a miss the computation itself streams through a
      tile-checkpointing plan (``ctx.tile_checkpoint``, default on): a
      run killed mid-Gram resumes at the first unfinished *tile*, not
      from scratch.
    * ``ctx.sink_factory`` (exclusive with the store —
      :meth:`ExecutionContext.validate` refuses the combination) hands
      Gram assembly to an explicit sink — a
      :class:`~repro.engine.tiles.MemmapSink` runs the protocol over a
      Gram that never fits in RAM (the conditioner fits by streaming row
      stripes; fold sub-matrices densify only at ``train × train``
      size). With ``condition=True`` a memmapped Gram is conditioned
      **in place**: the sink's backing file ends up holding conditioned
      values, so point it at a scratch path — never at a store artifact
      other readers expect to contain raw kernel values.
    """
    from repro.api.context import resolve_context, single_use_sink_factory
    from repro.store import store_backed_gram

    ctx = resolve_context(
        ctx,
        owner="cross_validate_graph_kernel",
        engine=engine,
        store=store,
        sink=sink,
        tile_checkpoint=tile_checkpoint,
    )
    if ctx is None:
        normalize = True if normalize is None else bool(normalize)
        ensure_psd = bool(ensure_psd)
        gram = kernel.gram(
            list(graphs), normalize=normalize, ensure_psd=ensure_psd
        )
    else:
        normalize = ctx.policy(normalize, "normalize", True)
        ensure_psd = ctx.policy(ensure_psd, "ensure_psd", False)
        sink = ctx.make_sink()
        ctx.validate(ensure_psd=ensure_psd, sink=sink)
        if sink is not None:
            gram = kernel.gram(
                list(graphs),
                normalize=normalize,
                ensure_psd=ensure_psd,
                ctx=ctx.replace(sink_factory=single_use_sink_factory(sink)),
            )
        else:
            gram = store_backed_gram(
                kernel,
                list(graphs),
                ctx.store,
                normalize=normalize,
                ensure_psd=ensure_psd,
                tile_checkpoint=ctx.tile_checkpoint,
                ctx=ctx,
            )
    if condition:
        # The same fit/transform object the serving path uses
        # (repro.serve), so protocol runs and bundles condition Grams
        # through one code path. Memmapped Grams stay out of core: the
        # fit streams row stripes and the transform rewrites tiles in
        # place; only per-fold train × train sub-matrices ever densify.
        conditioner = GramConditioner(ctx=ctx).fit(gram)
        if isinstance(gram, np.memmap):
            gram = conditioner.transform_inplace_tiled(gram)
        else:
            gram = conditioner.transform(gram)
    return cross_validate_kernel(gram, labels, **cv_kwargs)
