"""Evaluation metrics and result aggregation for the CV experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    true_arr = np.asarray(y_true)
    pred_arr = np.asarray(y_pred)
    if true_arr.shape != pred_arr.shape:
        raise ValidationError(
            f"shape mismatch: y_true {true_arr.shape} vs y_pred {pred_arr.shape}"
        )
    if true_arr.size == 0:
        raise ValidationError("cannot compute accuracy of empty arrays")
    return float(np.mean(true_arr == pred_arr))


def confusion_matrix(y_true, y_pred, classes=None) -> np.ndarray:
    """Counts ``C[i, j]`` of true class ``i`` predicted as class ``j``.

    With an explicit ``classes`` argument, every observed label must be
    covered — an unknown label raises :class:`ValidationError` naming the
    offenders rather than surfacing as a raw ``KeyError`` from the index
    lookup.
    """
    true_arr = np.asarray(y_true)
    pred_arr = np.asarray(y_pred)
    if true_arr.shape != pred_arr.shape:
        raise ValidationError(
            f"shape mismatch: y_true {true_arr.shape} vs y_pred {pred_arr.shape}"
        )
    explicit = classes is not None
    if not explicit:
        # Derived from the labels themselves: unknowns impossible.
        classes = np.unique(np.concatenate([true_arr, pred_arr]))
    index = {c: i for i, c in enumerate(classes)}
    if explicit:
        unknown = sorted(
            {
                label.item() if hasattr(label, "item") else label
                for label in np.concatenate([true_arr, pred_arr])
                if label not in index
            }
        )
        if unknown:
            raise ValidationError(
                f"labels {unknown} do not appear in classes={list(classes)}"
            )
    matrix = np.zeros((len(classes), len(classes)), dtype=int)
    for t, p in zip(true_arr, pred_arr):
        matrix[index[t], index[p]] += 1
    return matrix


@dataclass(frozen=True)
class CVResult:
    """Aggregated cross-validation outcome (one Table IV cell).

    ``mean_accuracy`` and ``standard_error`` follow the paper's reporting:
    the mean over repetitions of the per-repetition 10-fold accuracy, and
    the standard error of that mean across repetitions.
    """

    mean_accuracy: float
    standard_error: float
    per_repeat: tuple
    best_c: float

    def __str__(self) -> str:
        return f"{self.mean_accuracy * 100:.2f} ± {self.standard_error * 100:.2f}"


def summarize_repeats(per_repeat_accuracies, best_c: float) -> CVResult:
    """Fold repeated-CV accuracies into a :class:`CVResult`."""
    values = np.asarray(list(per_repeat_accuracies), dtype=float)
    if values.size == 0:
        raise ValidationError("no accuracies to summarize")
    mean = float(values.mean())
    if values.size > 1:
        stderr = float(values.std(ddof=1) / np.sqrt(values.size))
    else:
        stderr = 0.0
    return CVResult(mean, stderr, tuple(values.tolist()), float(best_c))
