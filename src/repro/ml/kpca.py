"""Kernel PCA on precomputed Gram matrices.

Graph kernels live entirely in Gram-matrix space, so the standard way to
*look* at a kernel — scatter the graphs in 2-D, colour by class — is kernel
PCA (Schölkopf et al., 1998): center the Gram matrix, eigendecompose, and
scale the leading eigenvectors by the square roots of their eigenvalues.
The hierarchy-visualisation example and the dataset-quality diagnostics use
this to show what the HAQJSK alignment actually does to a collection.

Out-of-sample projection follows the usual formula: a new graph with kernel
row ``k(x, X_train)`` is centered against the training statistics and
projected onto the stored eigenvectors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.utils.validation import check_positive_int

#: Eigenvalues below this fraction of the largest are treated as zero.
_RELATIVE_RANK_TOL = 1e-10


class KernelPCA:
    """Principal components of the feature embedding behind a Gram matrix.

    Parameters
    ----------
    n_components:
        Number of leading components to keep. Components beyond the
        matrix's numerical rank come out as zero coordinates.

    Attributes (after :meth:`fit`)
    ------------------------------
    eigenvalues_:
        The kept eigenvalues of the centered Gram matrix, descending;
        non-positive tail eigenvalues are clipped to zero.
    explained_ratio_:
        ``eigenvalues_ / sum(all positive eigenvalues)``.
    """

    def __init__(self, n_components: int = 2) -> None:
        self.n_components = check_positive_int(
            n_components, "n_components", minimum=1
        )
        self.eigenvalues_: "np.ndarray | None" = None
        self.explained_ratio_: "np.ndarray | None" = None
        self._eigenvectors: "np.ndarray | None" = None
        self._train_gram: "np.ndarray | None" = None
        self._row_means: "np.ndarray | None" = None
        self._total_mean: float = 0.0

    def fit(self, gram: np.ndarray) -> "KernelPCA":
        """Fit on a square training Gram matrix."""
        k_matrix = np.asarray(gram, dtype=float)
        if k_matrix.ndim != 2 or k_matrix.shape[0] != k_matrix.shape[1]:
            raise ValidationError(
                f"gram must be square, got shape {k_matrix.shape}"
            )
        n = k_matrix.shape[0]
        self._row_means = k_matrix.mean(axis=1)
        self._total_mean = float(k_matrix.mean())
        centered = (
            k_matrix
            - self._row_means[:, None]
            - self._row_means[None, :]
            + self._total_mean
        )
        values, vectors = np.linalg.eigh(centered)
        order = np.argsort(values)[::-1]
        values, vectors = values[order], vectors[:, order]
        cutoff = max(values[0], 0.0) * _RELATIVE_RANK_TOL if n else 0.0
        positive = np.clip(values, 0.0, None)
        positive[positive <= cutoff] = 0.0

        kept = min(self.n_components, n)
        self.eigenvalues_ = positive[:kept]
        total = positive.sum()
        self.explained_ratio_ = (
            self.eigenvalues_ / total if total > 0 else np.zeros(kept)
        )
        self._eigenvectors = vectors[:, :kept]
        self._train_gram = k_matrix
        return self

    def transform(self, kernel_rows: np.ndarray) -> np.ndarray:
        """Project kernel rows ``k(new, train)`` into component space."""
        if self._eigenvectors is None:
            raise NotFittedError("KernelPCA must be fitted before transform")
        rows = np.atleast_2d(np.asarray(kernel_rows, dtype=float))
        n_train = self._train_gram.shape[0]
        if rows.shape[1] != n_train:
            raise ValidationError(
                f"kernel_rows must have {n_train} columns, got {rows.shape}"
            )
        centered = (
            rows
            - rows.mean(axis=1, keepdims=True)
            - self._row_means[None, :]
            + self._total_mean
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(
                self.eigenvalues_ > 0, 1.0 / np.sqrt(self.eigenvalues_), 0.0
            )
        return centered @ self._eigenvectors * scale[None, :]

    def fit_transform(self, gram: np.ndarray) -> np.ndarray:
        """Fit on ``gram`` and return the training embedding directly.

        Equivalent to (but cheaper and exact compared to) ``fit(gram)``
        followed by ``transform(gram)``: row ``i`` is
        ``sqrt(lambda_j) * v_j[i]`` over components ``j``.
        """
        self.fit(gram)
        return self._eigenvectors * np.sqrt(self.eigenvalues_)[None, :]


def kernel_embedding(
    gram: np.ndarray, *, n_components: int = 2
) -> np.ndarray:
    """One-shot kernel-PCA embedding of a Gram matrix (rows = graphs)."""
    return KernelPCA(n_components=n_components).fit_transform(gram)
