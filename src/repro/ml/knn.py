"""k-nearest-neighbour classification on precomputed Gram matrices.

The shape datasets of Table II (GatorBait and friends) are retrieval-style:
many classes, a handful of observations each. For such regimes a kernel
k-NN classifier is the standard companion diagnostic to the C-SVM — it has
no capacity knobs, so its accuracy directly reflects how well the kernel
ranks same-class graphs above different-class ones. The dataset-quality
tests and the shape-retrieval example both use it.

Similarity semantics: *larger kernel value = nearer neighbour*. For a PSD
kernel this matches the induced feature-space distance whenever the
diagonal is constant (e.g. after cosine normalisation); an explicit
``metric="distance"`` mode converts to induced squared distances
``K_ii + K_jj - 2 K_ij`` first for kernels with informative self-similarity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.utils.validation import check_positive_int

_METRICS = ("similarity", "distance")


class KernelKNN:
    """k-NN over a precomputed kernel.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size ``k``. Ties in the vote break toward the
        nearest contributing neighbour (then the smaller label, for
        determinism).
    metric:
        ``"similarity"`` ranks by kernel value descending;
        ``"distance"`` ranks by induced squared distance ascending.
    """

    def __init__(self, n_neighbors: int = 1, *, metric: str = "similarity"):
        self.n_neighbors = check_positive_int(
            n_neighbors, "n_neighbors", minimum=1
        )
        if metric not in _METRICS:
            raise ValidationError(
                f"metric must be one of {_METRICS}, got {metric!r}"
            )
        self.metric = metric
        self.classes_: "np.ndarray | None" = None
        self._labels: "np.ndarray | None" = None
        self._train_diagonal: "np.ndarray | None" = None

    def fit(self, gram: np.ndarray, labels) -> "KernelKNN":
        """Store training labels (and the diagonal, for distance mode)."""
        k_matrix = np.asarray(gram, dtype=float)
        y = np.asarray(labels)
        if k_matrix.ndim != 2 or k_matrix.shape != (y.size, y.size):
            raise ValidationError(
                f"gram {k_matrix.shape} incompatible with labels {y.shape}"
            )
        self.classes_ = np.unique(y)
        self._labels = y
        self._train_diagonal = np.diag(k_matrix).copy()
        return self

    def predict(
        self, kernel_rows: np.ndarray, *, self_diagonal: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Predict labels for test rows ``K(test, train)``.

        ``self_diagonal`` (``K(test, test)`` diagonal) is only needed in
        ``"distance"`` mode; it defaults to ones, which is exact for
        cosine-normalised kernels.
        """
        if self._labels is None:
            raise NotFittedError("KernelKNN must be fitted before prediction")
        rows = np.atleast_2d(np.asarray(kernel_rows, dtype=float))
        n_train = self._labels.size
        if rows.shape[1] != n_train:
            raise ValidationError(
                f"kernel_rows must have {n_train} columns, got {rows.shape}"
            )
        if rows.shape[0] == 0:
            # Empty serving batch: nothing to rank, empty labels out.
            return self._labels[:0]
        scores = self._neighbour_scores(rows, self_diagonal)
        k = min(self.n_neighbors, n_train)
        predictions = np.empty(rows.shape[0], dtype=self._labels.dtype)
        for t in range(rows.shape[0]):
            # argsort descending by score; stable for determinism
            order = np.argsort(-scores[t], kind="stable")[:k]
            votes: dict = {}
            for rank, neighbour in enumerate(order):
                label = self._labels[neighbour]
                best_rank, count = votes.get(label, (rank, 0))
                votes[label] = (min(best_rank, rank), count + 1)
            predictions[t] = min(
                votes, key=lambda lbl: (-votes[lbl][1], votes[lbl][0], lbl)
            )
        return predictions

    def score(self, kernel_rows: np.ndarray, labels) -> float:
        """Mean accuracy over the given test rows."""
        predictions = self.predict(kernel_rows)
        return float(np.mean(predictions == np.asarray(labels)))

    def _neighbour_scores(self, rows, self_diagonal) -> np.ndarray:
        if self.metric == "similarity":
            return rows
        diagonal = (
            np.ones(rows.shape[0])
            if self_diagonal is None
            else np.asarray(self_diagonal, dtype=float)
        )
        if diagonal.shape != (rows.shape[0],):
            raise ValidationError(
                f"self_diagonal must have length {rows.shape[0]}"
            )
        squared = (
            diagonal[:, None] + self._train_diagonal[None, :] - 2.0 * rows
        )
        return -squared  # larger score = nearer


def leave_one_out_knn_accuracy(
    gram: np.ndarray, labels, *, n_neighbors: int = 1
) -> float:
    """Leave-one-out k-NN accuracy on a full Gram matrix.

    The standard retrieval-quality probe: each graph is classified from
    the rest of the collection. Masks the diagonal rather than refitting.
    """
    k_matrix = np.asarray(gram, dtype=float)
    y = np.asarray(labels)
    model = KernelKNN(n_neighbors=n_neighbors).fit(k_matrix, y)
    masked = k_matrix - np.eye(y.size) * (np.abs(k_matrix).max() + 1.0)
    predictions = model.predict(masked)
    return float(np.mean(predictions == y))
