"""Gram-matrix conditioning for the C-SVM evaluation protocol.

Similarity-shaped graph kernels (anything of the form ``sum_h exp(-D_h)``,
like the HAQJSK family) produce Gram matrices of the form
``K = c * 11^T + epsilon * S``: a large constant rank-one component plus a
small signal. The SVM dual's equality constraint ``y^T alpha = 0`` cancels
the constant component *exactly*, so the machine effectively trains on
``epsilon * S`` — and the box constraint then caps the ``1/epsilon`` dual
scale the fit needs, silently underfitting at any reasonable ``C``.

The standard remedy (and what this module provides) is unsupervised Gram
conditioning before the SVM sees the matrix:

* :func:`center_gram` — double centering, i.e. translating the feature
  embedding to zero mean. Removes the constant component. PSD-preserving
  (``HKH`` with the centering projector ``H``) and decision-boundary
  neutral for an SVM (a translation of feature space).
* :func:`scale_gram` — divide by the mean diagonal so self-similarity is
  O(1) and one ``C`` grid works across kernels and datasets. Scaling a
  kernel by a positive constant only rescales the optimal ``C``.
* :func:`condition_gram` — both, which is what the Table IV/V harness
  applies uniformly to every kernel.

Both transformations are label-free, so applying them to the full Gram
before cross-validation introduces no label leakage (the same benign
transductivity as the usual cosine normalisation).

Transductive vs inductive use
-----------------------------
:func:`condition_gram` (and the bare :func:`center_gram`/:func:`scale_gram`)
are **transductive**: the statistics (row/column means, the diagonal
scale) are recomputed from whatever matrix is passed in. That is exactly
right for the paper's protocol — the full Gram over the collection is
conditioned once, before cross-validation. It is exactly *wrong* for
serving: conditioning a ``(ΔN, N)`` cross block ``K(new, train)`` with
statistics of that block silently disagrees with the matrix the SVM was
trained on, shifting every decision value. Serving-time callers must use
:class:`GramConditioner` instead — ``fit(K_train)`` captures the
*training* statistics once, ``transform(K_train)`` conditions the
training Gram with them, and ``transform_cross(rows)`` applies the same
frozen statistics to newcomer rows, so training and serving see one
consistent feature-space translation and scale.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import tile_ranges
from repro.errors import NotFittedError, ValidationError

#: Diagonals below this are treated as numerically zero (degenerate Gram).
_DEGENERATE_DIAGONAL = 1e-12


def _as_square(matrix: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got {arr.shape}")
    return arr


def center_gram(matrix: np.ndarray) -> np.ndarray:
    """Double-center a Gram matrix (zero-mean feature embedding).

    Computes ``H K H`` with ``H = I - 11^T/n``, i.e.
    ``K_ij - mean_i - mean_j + mean_all``. If ``K`` is PSD the result is
    PSD, and the implicit feature points are merely translated, so SVM
    margins are unchanged while the constant-offset component (which the
    dual cannot use but which wrecks conditioning) is removed.
    """
    arr = _as_square(matrix, "gram")
    row_means = arr.mean(axis=1, keepdims=True)
    col_means = arr.mean(axis=0, keepdims=True)
    return arr - row_means - col_means + arr.mean()


def scale_gram(matrix: np.ndarray) -> np.ndarray:
    """Scale a Gram matrix so its mean diagonal entry is 1.

    A positive rescale of the kernel is equivalent to rescaling ``C``, so
    this is purely a conditioning step that lets a single ``C`` grid serve
    every kernel. Degenerate matrices (mean diagonal ~ 0, e.g. a centered
    all-constant Gram) are returned unchanged — there is no signal to
    rescale.
    """
    arr = _as_square(matrix, "gram")
    mean_diagonal = float(np.trace(arr)) / max(arr.shape[0], 1)
    if mean_diagonal <= _DEGENERATE_DIAGONAL:
        return arr.copy()
    return arr / mean_diagonal


def condition_gram(matrix: np.ndarray) -> np.ndarray:
    """Center then rescale — the harness's standard pre-SVM conditioning.

    Transductive: the statistics come from ``matrix`` itself. This is one
    code path with the serving-time :class:`GramConditioner` (``fit`` then
    ``transform`` on the same matrix), so the Table IV/V harness and the
    prediction service condition training Grams identically.
    """
    conditioner = GramConditioner().fit(matrix)
    return conditioner.transform(matrix)


class GramConditioner:
    """Fit/transform split of :func:`condition_gram` for inductive serving.

    ``fit(K_train)`` captures the training Gram's centering statistics
    (per-column means and the grand mean — i.e. the implicit feature-space
    translation) and the post-centering diagonal scale.
    ``transform(K_train)`` then reproduces ``condition_gram(K_train)``
    bit-for-bit, and ``transform_cross(rows)`` applies the *same frozen
    statistics* to serving-time ``K(new, train)`` rows:

        K̃(t, i) = ( K(t, i) − mean_j K(t, j) − mean_j K(j, i)
                    + mean_jj' K(j, j') ) / s

    which is the exact centered kernel ``<φ(t) − μ, φ(i) − μ>`` with the
    *training* mean ``μ`` and training scale ``s``. Conditioning the cross
    block with its own statistics instead (the transductive functions
    above) would translate test points by a different ``μ`` than the
    machine was trained with — the latent out-of-sample bug this class
    exists to fix.

    How close is this to the transductive protocol? The SVM dual is
    exactly invariant to the choice of centering vector on its feasible
    set ``yᵀα = 0`` (the SMO trajectory is identical step for step), so
    the *centering* difference between train-only and full-collection
    statistics never changes a prediction. The *scale* statistic does
    differ (mean centered diagonal over train vs over train+test), which
    at a fixed ``C`` slightly rescales the effective box constraint — so
    label agreement with the transductive protocol is exact up to points
    whose margin is within that perturbation. The serving equivalence
    tests pin exact label agreement empirically on the test datasets.

    Parameters
    ----------
    center / scale:
        Disable either step; both default on, matching
        :func:`condition_gram`.
    ctx:
        Optional :class:`~repro.api.context.ExecutionContext`; its
        ``tile_size`` becomes the default tile/stripe width of the
        streaming paths (:meth:`transform_inplace_tiled`, the memmap
        ``fit``), so out-of-core conditioning and the Gram computation
        that produced the matrix agree on granularity.
    """

    #: Tile/stripe width of the streaming paths when neither the call
    #: site nor a context picks one.
    DEFAULT_TILE = 256

    def __init__(
        self, *, center: bool = True, scale: bool = True, ctx=None
    ) -> None:
        self.center = bool(center)
        self.scale = bool(scale)
        self._tile = None
        if ctx is not None:
            tile = getattr(ctx, "tile_size", None)
            self._tile = None if tile is None else int(tile)
        self.n_train_: "int | None" = None
        self.column_means_: "np.ndarray | None" = None
        self.grand_mean_: float = 0.0
        self.scale_: float = 1.0

    @property
    def is_fitted(self) -> bool:
        return self.n_train_ is not None

    def fit(self, gram: np.ndarray) -> "GramConditioner":
        """Capture centering means and diagonal scale from ``K_train``.

        Memory-mapped training Grams (the out-of-core sink path) are
        fitted by streaming row stripes — the statistics cost ``O(N)``
        memory, never a densified copy of the matrix.
        """
        if isinstance(gram, np.memmap):
            return self._fit_streaming(gram, stripe_rows=self._resolved_tile())
        arr = _as_square(gram, "gram")
        self.n_train_ = arr.shape[0]
        self.column_means_ = arr.mean(axis=0)
        self.grand_mean_ = float(arr.mean())
        self.scale_ = 1.0
        if self.scale:
            centered = self._centered(arr) if self.center else arr
            mean_diagonal = float(np.trace(centered)) / max(arr.shape[0], 1)
            # Degenerate Grams (see scale_gram) keep scale 1: no signal.
            if mean_diagonal > _DEGENERATE_DIAGONAL:
                self.scale_ = mean_diagonal
        return self

    def _fit_streaming(
        self, gram, *, stripe_rows: int = 256
    ) -> "GramConditioner":
        """Same statistics as :meth:`fit`, accumulated stripe by stripe.

        Agrees with the dense path to accumulation round-off (~1e-15
        relative); the centered-diagonal scale uses the closed form
        ``centered_ii = K_ii - 2·col_mean_i + grand_mean`` (valid because
        Gram matrices are symmetric: row means equal column means).
        """
        n = int(gram.shape[0])
        if gram.ndim != 2 or gram.shape[1] != n:
            raise ValidationError(
                f"gram must be a square matrix, got {gram.shape}"
            )
        column_sums = np.zeros(n)
        diagonal = np.zeros(n)
        for start, stop in tile_ranges(n, stripe_rows):
            stripe = np.asarray(gram[start:stop, :], dtype=float)
            column_sums += stripe.sum(axis=0)
            diagonal[start:stop] = stripe[
                np.arange(stop - start), np.arange(start, stop)
            ]
        self.n_train_ = n
        self.column_means_ = column_sums / max(n, 1)
        self.grand_mean_ = float(self.column_means_.mean()) if n else 0.0
        self.scale_ = 1.0
        if self.scale and n:
            if self.center:
                centered_diagonal = (
                    diagonal - 2.0 * self.column_means_ + self.grand_mean_
                )
            else:
                centered_diagonal = diagonal
            mean_diagonal = float(centered_diagonal.mean())
            if mean_diagonal > _DEGENERATE_DIAGONAL:
                self.scale_ = mean_diagonal
        return self

    def transform(self, gram: np.ndarray) -> np.ndarray:
        """Condition a square Gram over the *training* collection."""
        arr = _as_square(gram, "gram")
        self._check_columns(arr)
        return self._apply(arr)

    def transform_cross(self, rows: np.ndarray) -> np.ndarray:
        """Condition serving-time ``K(new, train)`` rows — the inductive
        path: training statistics, never the rows' own.

        Because every statistic is frozen at fit time and each output row
        depends only on its own input row, this applies *per tile*: a
        ``(ΔN, N)`` block conditioned in row chunks (the streaming
        serving path, ``PredictionService(max_block_graphs=...)``) equals
        the one-shot call row for row.
        """
        arr = np.asarray(rows, dtype=float)
        if arr.ndim != 2:
            raise ValidationError(
                f"cross rows must be a 2-D (n_new, n_train) block, "
                f"got shape {arr.shape}"
            )
        self._check_columns(arr)
        return self._apply(arr)

    def fit_transform(self, gram: np.ndarray) -> np.ndarray:
        """``fit`` then ``transform`` — equals :func:`condition_gram`."""
        return self.fit(gram).transform(gram)

    def _resolved_tile(self) -> int:
        # getattr: conditioners unpickled from pre-context bundles lack
        # the attribute.
        tile = getattr(self, "_tile", None)
        return tile if tile is not None else self.DEFAULT_TILE

    def transform_inplace_tiled(
        self, gram, *, tile_size: "int | None" = None
    ):
        """Condition a (possibly memmapped) *training* Gram in place, one
        tile at a time — the out-of-core counterpart of :meth:`transform`.

        Valid only for the symmetric training matrix the conditioner was
        fitted on (``transform``'s per-row means coincide with the frozen
        column means there, exactly — symmetry makes the two sums
        element-for-element identical). Peak extra memory is one tile;
        the input is **mutated** (and flushed, for memmaps), so only hand
        it matrices you own — never a store artifact another run may
        reread as raw values.
        """
        if tile_size is None:
            tile_size = self._resolved_tile()
        self._check_columns(np.asarray(gram[:1, :]))
        n = int(gram.shape[0])
        if gram.shape != (n, n) or n != self.n_train_:
            raise ValidationError(
                f"expected the ({self.n_train_}, {self.n_train_}) training "
                f"Gram, got shape {gram.shape}"
            )
        for r0, r1 in tile_ranges(n, tile_size):
            for c0, c1 in tile_ranges(n, tile_size):
                tile = np.asarray(gram[r0:r1, c0:c1], dtype=float)
                if self.center:
                    tile = (
                        tile
                        - self.column_means_[r0:r1, None]
                        - self.column_means_[None, c0:c1]
                        + self.grand_mean_
                    )
                if self.scale and self.scale_ != 1.0:
                    tile = tile / self.scale_
                gram[r0:r1, c0:c1] = tile
        if isinstance(gram, np.memmap):
            gram.flush()
        return gram

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _centered(self, block: np.ndarray) -> np.ndarray:
        """Center rows against the stored training statistics.

        The row term is each point's mean similarity *to the training
        collection* (its columns), the column term and grand mean are the
        frozen training means — on the training matrix itself this is
        exactly :func:`center_gram`.
        """
        return (
            block
            - block.mean(axis=1, keepdims=True)
            - self.column_means_[None, :]
            + self.grand_mean_
        )

    def _apply(self, block: np.ndarray) -> np.ndarray:
        out = self._centered(block) if self.center else np.array(block)
        if self.scale and self.scale_ != 1.0:
            out = out / self.scale_
        return out

    def _check_columns(self, block: np.ndarray) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                "GramConditioner must be fitted on the training Gram first"
            )
        if block.shape[1] != self.n_train_:
            raise ValidationError(
                f"expected {self.n_train_} training columns, "
                f"got shape {block.shape}"
            )


def kernel_target_alignment(matrix: np.ndarray, labels) -> float:
    """Centered kernel-target alignment (Cristianini et al., 2001).

    The cosine, in Frobenius inner-product space, between the centered
    Gram matrix and the ideal kernel ``Y Yᵀ`` built from class-indicator
    vectors: 1 means the kernel already clusters the classes perfectly,
    0 means no linear relationship. A standard, SVM-free figure of merit
    for comparing kernels on one dataset — the dataset-quality diagnostics
    report it next to 1-NN accuracy because it is smooth where 1-NN is
    brittle on tiny classes.
    """
    arr = _as_square(matrix, "gram")
    y = np.asarray(labels)
    if y.ndim != 1 or y.size != arr.shape[0]:
        raise ValidationError(
            f"labels {y.shape} incompatible with gram {arr.shape}"
        )
    centered = center_gram(arr)
    target = np.equal.outer(y, y).astype(float)
    target = center_gram(target)
    denominator = np.linalg.norm(centered) * np.linalg.norm(target)
    if denominator <= _DEGENERATE_DIAGONAL:
        return 0.0
    return float(np.sum(centered * target) / denominator)


def gram_signal_summary(matrix: np.ndarray, labels) -> dict:
    """Diagnostics for how much class signal a Gram matrix carries.

    Returns the within-class and between-class mean similarities (diagonal
    excluded), their gap, and the leave-one-out 1-nearest-neighbour
    accuracy — a model-free upper-bound probe the dataset-quality tests and
    the properties bench report alongside SVM accuracy.
    """
    arr = _as_square(matrix, "gram")
    y = np.asarray(labels)
    if y.ndim != 1 or y.size != arr.shape[0]:
        raise ValidationError(
            f"labels {y.shape} incompatible with gram {arr.shape}"
        )
    same_class = np.equal.outer(y, y)
    off_diagonal = ~np.eye(y.size, dtype=bool)
    within = arr[same_class & off_diagonal]
    between = arr[~same_class]
    masked = arr - np.eye(y.size) * (np.abs(arr).max() + 1.0)
    neighbours = masked.argmax(axis=1)
    return {
        "within_mean": float(within.mean()) if within.size else float("nan"),
        "between_mean": float(between.mean()) if between.size else float("nan"),
        "gap": float(within.mean() - between.mean())
        if within.size and between.size
        else float("nan"),
        "one_nn_accuracy": float(np.mean(y[neighbours] == y)),
        "target_alignment": kernel_target_alignment(arr, y),
    }
