"""Gram-matrix conditioning for the C-SVM evaluation protocol.

Similarity-shaped graph kernels (anything of the form ``sum_h exp(-D_h)``,
like the HAQJSK family) produce Gram matrices of the form
``K = c * 11^T + epsilon * S``: a large constant rank-one component plus a
small signal. The SVM dual's equality constraint ``y^T alpha = 0`` cancels
the constant component *exactly*, so the machine effectively trains on
``epsilon * S`` — and the box constraint then caps the ``1/epsilon`` dual
scale the fit needs, silently underfitting at any reasonable ``C``.

The standard remedy (and what this module provides) is unsupervised Gram
conditioning before the SVM sees the matrix:

* :func:`center_gram` — double centering, i.e. translating the feature
  embedding to zero mean. Removes the constant component. PSD-preserving
  (``HKH`` with the centering projector ``H``) and decision-boundary
  neutral for an SVM (a translation of feature space).
* :func:`scale_gram` — divide by the mean diagonal so self-similarity is
  O(1) and one ``C`` grid works across kernels and datasets. Scaling a
  kernel by a positive constant only rescales the optimal ``C``.
* :func:`condition_gram` — both, which is what the Table IV/V harness
  applies uniformly to every kernel.

Both transformations are label-free, so applying them to the full Gram
before cross-validation introduces no label leakage (the same benign
transductivity as the usual cosine normalisation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

#: Diagonals below this are treated as numerically zero (degenerate Gram).
_DEGENERATE_DIAGONAL = 1e-12


def _as_square(matrix: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got {arr.shape}")
    return arr


def center_gram(matrix: np.ndarray) -> np.ndarray:
    """Double-center a Gram matrix (zero-mean feature embedding).

    Computes ``H K H`` with ``H = I - 11^T/n``, i.e.
    ``K_ij - mean_i - mean_j + mean_all``. If ``K`` is PSD the result is
    PSD, and the implicit feature points are merely translated, so SVM
    margins are unchanged while the constant-offset component (which the
    dual cannot use but which wrecks conditioning) is removed.
    """
    arr = _as_square(matrix, "gram")
    row_means = arr.mean(axis=1, keepdims=True)
    col_means = arr.mean(axis=0, keepdims=True)
    return arr - row_means - col_means + arr.mean()


def scale_gram(matrix: np.ndarray) -> np.ndarray:
    """Scale a Gram matrix so its mean diagonal entry is 1.

    A positive rescale of the kernel is equivalent to rescaling ``C``, so
    this is purely a conditioning step that lets a single ``C`` grid serve
    every kernel. Degenerate matrices (mean diagonal ~ 0, e.g. a centered
    all-constant Gram) are returned unchanged — there is no signal to
    rescale.
    """
    arr = _as_square(matrix, "gram")
    mean_diagonal = float(np.trace(arr)) / max(arr.shape[0], 1)
    if mean_diagonal <= _DEGENERATE_DIAGONAL:
        return arr.copy()
    return arr / mean_diagonal


def condition_gram(matrix: np.ndarray) -> np.ndarray:
    """Center then rescale — the harness's standard pre-SVM conditioning."""
    return scale_gram(center_gram(matrix))


def kernel_target_alignment(matrix: np.ndarray, labels) -> float:
    """Centered kernel-target alignment (Cristianini et al., 2001).

    The cosine, in Frobenius inner-product space, between the centered
    Gram matrix and the ideal kernel ``Y Yᵀ`` built from class-indicator
    vectors: 1 means the kernel already clusters the classes perfectly,
    0 means no linear relationship. A standard, SVM-free figure of merit
    for comparing kernels on one dataset — the dataset-quality diagnostics
    report it next to 1-NN accuracy because it is smooth where 1-NN is
    brittle on tiny classes.
    """
    arr = _as_square(matrix, "gram")
    y = np.asarray(labels)
    if y.ndim != 1 or y.size != arr.shape[0]:
        raise ValidationError(
            f"labels {y.shape} incompatible with gram {arr.shape}"
        )
    centered = center_gram(arr)
    target = np.equal.outer(y, y).astype(float)
    target = center_gram(target)
    denominator = np.linalg.norm(centered) * np.linalg.norm(target)
    if denominator <= _DEGENERATE_DIAGONAL:
        return 0.0
    return float(np.sum(centered * target) / denominator)


def gram_signal_summary(matrix: np.ndarray, labels) -> dict:
    """Diagnostics for how much class signal a Gram matrix carries.

    Returns the within-class and between-class mean similarities (diagonal
    excluded), their gap, and the leave-one-out 1-nearest-neighbour
    accuracy — a model-free upper-bound probe the dataset-quality tests and
    the properties bench report alongside SVM accuracy.
    """
    arr = _as_square(matrix, "gram")
    y = np.asarray(labels)
    if y.ndim != 1 or y.size != arr.shape[0]:
        raise ValidationError(
            f"labels {y.shape} incompatible with gram {arr.shape}"
        )
    same_class = np.equal.outer(y, y)
    off_diagonal = ~np.eye(y.size, dtype=bool)
    within = arr[same_class & off_diagonal]
    between = arr[~same_class]
    masked = arr - np.eye(y.size) * (np.abs(arr).max() + 1.0)
    neighbours = masked.argmax(axis=1)
    return {
        "within_mean": float(within.mean()) if within.size else float("nan"),
        "between_mean": float(between.mean()) if between.size else float("nan"),
        "gap": float(within.mean() - between.mean())
        if within.size and between.size
        else float("nan"),
        "one_nn_accuracy": float(np.mean(y[neighbours] == y)),
        "target_alignment": kernel_target_alignment(arr, y),
    }
