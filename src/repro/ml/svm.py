"""C-SVM with precomputed kernels, trained by SMO (LIBSVM-style solver).

The paper trains C-SVMs (LIBSVM, ref. [51]) on kernel matrices; scikit-learn
is unavailable here, so this module implements the same dual problem

    min_alpha  1/2 alphaᵀ Q alpha - eᵀ alpha
    s.t.       yᵀ alpha = 0,  0 <= alpha_i <= C,   Q_ij = y_i y_j K_ij

with second-order working-set selection (LIBSVM's WSS 2) and the standard
two-variable analytic update. Only the precomputed-kernel path is needed —
every model in this reproduction consumes a Gram matrix.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.errors import ConvergenceWarning, NotFittedError, ValidationError
from repro.utils.validation import check_in_range, check_positive_int

_TAU = 1e-12


class BinarySVM:
    """Soft-margin binary SVM on a precomputed kernel.

    Parameters
    ----------
    c:
        Box constraint ``C`` (larger = harder margin).
    tol:
        KKT violation tolerance for the stopping rule.
    max_iter:
        Cap on SMO iterations; hitting it emits :class:`ConvergenceWarning`.

    Attributes (after :meth:`fit`)
    ------------------------------
    dual_coef_:  ``alpha_i * y_i`` for every training point.
    bias_:       the decision-function offset ``-rho``.
    support_:    indices with non-zero ``alpha``.
    n_iter_:     SMO iterations performed.
    """

    def __init__(self, c: float = 1.0, *, tol: float = 1e-3, max_iter: int = 100_000):
        self.c = check_in_range(c, "c", low=0.0, high=np.inf, low_inclusive=False)
        self.tol = check_in_range(tol, "tol", low=0.0, high=1.0, low_inclusive=False)
        self.max_iter = check_positive_int(max_iter, "max_iter", minimum=1)
        self.dual_coef_: "np.ndarray | None" = None
        self.bias_: float = 0.0
        self.support_: "np.ndarray | None" = None
        self.n_iter_: int = 0

    def fit(self, kernel: np.ndarray, labels: np.ndarray) -> "BinarySVM":
        """Train on ``kernel`` (n x n Gram) and ``labels`` in {-1, +1}."""
        k_matrix = np.asarray(kernel, dtype=float)
        y = np.asarray(labels, dtype=float)
        n = y.shape[0]
        if k_matrix.shape != (n, n):
            raise ValidationError(
                f"kernel must be ({n}, {n}) to match labels, got {k_matrix.shape}"
            )
        if not np.all(np.isin(y, (-1.0, 1.0))):
            raise ValidationError("labels must be -1 or +1")
        if np.unique(y).size < 2:
            raise ValidationError("need both classes present to fit an SVM")

        q_matrix = k_matrix * np.outer(y, y)
        alpha = np.zeros(n)
        gradient = np.full(n, -1.0)  # G = Q alpha - e at alpha = 0
        c = self.c

        iteration = 0
        while iteration < self.max_iter:
            selected = self._select_working_set(y, alpha, gradient, q_matrix)
            if selected is None:
                break
            i, j = selected
            old_ai, old_aj = alpha[i], alpha[j]
            self._update_pair(i, j, y, alpha, gradient, q_matrix, c)
            delta_i, delta_j = alpha[i] - old_ai, alpha[j] - old_aj
            gradient += q_matrix[:, i] * delta_i + q_matrix[:, j] * delta_j
            iteration += 1

        if iteration >= self.max_iter:
            warnings.warn(
                f"SMO hit the iteration cap ({self.max_iter}); "
                "solution may be inexact",
                ConvergenceWarning,
                stacklevel=2,
            )

        self.n_iter_ = iteration
        self.dual_coef_ = alpha * y
        self.support_ = np.flatnonzero(alpha > 1e-12)
        self.bias_ = -self._compute_rho(y, alpha, gradient, c)
        return self

    def decision_function(self, kernel_rows: np.ndarray) -> np.ndarray:
        """``f(x) = sum_i alpha_i y_i K(x_i, x) + bias`` per row.

        ``kernel_rows[t, i]`` must be the kernel between test point ``t``
        and training point ``i``.
        """
        if self.dual_coef_ is None:
            raise NotFittedError("BinarySVM must be fitted before prediction")
        rows = np.asarray(kernel_rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self.dual_coef_.shape[0]:
            raise ValidationError(
                f"kernel_rows must be (n_test, {self.dual_coef_.shape[0]}), "
                f"got {rows.shape}"
            )
        return rows @ self.dual_coef_ + self.bias_

    def predict(self, kernel_rows: np.ndarray) -> np.ndarray:
        """Class predictions in {-1, +1} (ties resolve to +1)."""
        return np.where(self.decision_function(kernel_rows) >= 0.0, 1.0, -1.0)

    # ------------------------------------------------------------------ #
    # SMO internals
    # ------------------------------------------------------------------ #

    def _select_working_set(self, y, alpha, gradient, q_matrix):
        """LIBSVM WSS 2: maximal violating pair with second-order j choice."""
        c = self.c
        up_mask = ((y > 0) & (alpha < c - 1e-12)) | ((y < 0) & (alpha > 1e-12))
        low_mask = ((y > 0) & (alpha > 1e-12)) | ((y < 0) & (alpha < c - 1e-12))
        if not up_mask.any() or not low_mask.any():
            return None
        neg_yg = -y * gradient
        up_indices = np.flatnonzero(up_mask)
        i = int(up_indices[np.argmax(neg_yg[up_indices])])
        g_max = neg_yg[i]

        low_indices = np.flatnonzero(low_mask)
        g_min = float(np.min(neg_yg[low_indices]))
        if g_max - g_min < self.tol:
            return None

        # Second-order choice of j: largest decrease of the dual objective.
        grad_diff = g_max + y[low_indices] * gradient[low_indices]
        positive = grad_diff > 0
        if not positive.any():
            return None
        candidates = low_indices[positive]
        diffs = grad_diff[positive]
        # Pair curvature in K-space: K_ii + K_tt - 2 K_it. Since Q includes
        # the label signs, that equals Q_ii + Q_tt - 2 y_i y_t Q_it.
        quad = (
            q_matrix[i, i]
            + q_matrix[candidates, candidates]
            - 2.0 * y[i] * y[candidates] * q_matrix[i, candidates]
        )
        quad = np.where(quad <= 0, _TAU, quad)
        objective = -(diffs**2) / quad
        j = int(candidates[np.argmin(objective)])
        return i, j

    @staticmethod
    def _update_pair(i, j, y, alpha, gradient, q_matrix, c):
        """Two-variable analytic step, clipped to the box (LIBSVM update)."""
        if y[i] != y[j]:
            quad_coef = q_matrix[i, i] + q_matrix[j, j] + 2.0 * q_matrix[i, j]
            if quad_coef <= 0:
                quad_coef = _TAU
            delta = (-gradient[i] - gradient[j]) / quad_coef
            diff = alpha[i] - alpha[j]
            alpha[i] += delta
            alpha[j] += delta
            if diff > 0:
                if alpha[j] < 0:
                    alpha[j] = 0.0
                    alpha[i] = diff
            else:
                if alpha[i] < 0:
                    alpha[i] = 0.0
                    alpha[j] = -diff
            if diff > 0:
                if alpha[i] > c:
                    alpha[i] = c
                    alpha[j] = c - diff
            else:
                if alpha[j] > c:
                    alpha[j] = c
                    alpha[i] = c + diff
        else:
            quad_coef = q_matrix[i, i] + q_matrix[j, j] - 2.0 * q_matrix[i, j]
            if quad_coef <= 0:
                quad_coef = _TAU
            delta = (gradient[i] - gradient[j]) / quad_coef
            total = alpha[i] + alpha[j]
            alpha[i] -= delta
            alpha[j] += delta
            if total > c:
                if alpha[i] > c:
                    alpha[i] = c
                    alpha[j] = total - c
            else:
                if alpha[j] < 0:
                    alpha[j] = 0.0
                    alpha[i] = total
            if total > c:
                if alpha[j] > c:
                    alpha[j] = c
                    alpha[i] = total - c
            else:
                if alpha[i] < 0:
                    alpha[i] = 0.0
                    alpha[j] = total

    @staticmethod
    def _compute_rho(y, alpha, gradient, c) -> float:
        """The decision threshold, averaged over free support vectors."""
        y_grad = y * gradient
        free = (alpha > 1e-12) & (alpha < c - 1e-12)
        if free.any():
            return float(y_grad[free].mean())
        upper = ((alpha <= 1e-12) & (y > 0)) | ((alpha >= c - 1e-12) & (y < 0))
        lower = ((alpha <= 1e-12) & (y < 0)) | ((alpha >= c - 1e-12) & (y > 0))
        ub = float(y_grad[upper].min()) if upper.any() else 0.0
        lb = float(y_grad[lower].max()) if lower.any() else 0.0
        return (ub + lb) / 2.0
