"""ML substrate: SMO C-SVM, multiclass, cross-validation, metrics."""

from repro.ml.cross_validation import (
    DEFAULT_C_GRID,
    cross_validate_graph_kernel,
    cross_validate_kernel,
    select_c,
    stratified_k_fold,
)
from repro.ml.knn import KernelKNN, leave_one_out_knn_accuracy
from repro.ml.kpca import KernelPCA, kernel_embedding
from repro.ml.kernel_utils import (
    GramConditioner,
    center_gram,
    condition_gram,
    gram_signal_summary,
    kernel_target_alignment,
    scale_gram,
)
from repro.ml.nystrom import NystromApproximation, nystrom_gram
from repro.ml.metrics import CVResult, accuracy, confusion_matrix, summarize_repeats
from repro.ml.multiclass import KernelSVC
from repro.ml.svm import BinarySVM

__all__ = [
    "BinarySVM",
    "CVResult",
    "DEFAULT_C_GRID",
    "GramConditioner",
    "KernelKNN",
    "KernelPCA",
    "KernelSVC",
    "NystromApproximation",
    "accuracy",
    "center_gram",
    "condition_gram",
    "confusion_matrix",
    "cross_validate_graph_kernel",
    "cross_validate_kernel",
    "gram_signal_summary",
    "kernel_embedding",
    "kernel_target_alignment",
    "leave_one_out_knn_accuracy",
    "nystrom_gram",
    "scale_gram",
    "select_c",
    "stratified_k_fold",
    "summarize_repeats",
]
