"""Multiclass SVM via one-vs-one voting (LIBSVM's scheme).

The paper's datasets range from 2 to 30 classes (Table II); C-SVM handles
multiclass by training ``K(K-1)/2`` binary machines and voting, which is
what :class:`KernelSVC` does on precomputed Gram matrices.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import NotFittedError, ValidationError
from repro.ml.svm import BinarySVM
from repro.utils.validation import check_in_range


class KernelSVC:
    """One-vs-one multiclass C-SVM on a precomputed kernel.

    Usage::

        model = KernelSVC(c=10.0).fit(K[train][:, train], y[train])
        predictions = model.predict(K[test][:, train])
    """

    def __init__(self, c: float = 1.0, *, tol: float = 1e-3, max_iter: int = 100_000):
        self.c = check_in_range(c, "c", low=0.0, high=np.inf, low_inclusive=False)
        self.tol = tol
        self.max_iter = max_iter
        self.classes_: "np.ndarray | None" = None
        self._machines: "list[tuple] | None" = None
        self._n_train: int = 0

    def fit(self, kernel: np.ndarray, labels) -> "KernelSVC":
        """Train all pairwise machines on the training Gram matrix."""
        k_matrix = np.asarray(kernel, dtype=float)
        y = np.asarray(labels)
        if y.ndim != 1 or k_matrix.shape != (y.size, y.size):
            raise ValidationError(
                f"kernel {k_matrix.shape} incompatible with labels {y.shape}"
            )
        self.classes_ = np.unique(y)
        if self.classes_.size < 2:
            raise ValidationError("need at least two classes")
        self._n_train = y.size
        self._machines = []
        for class_a, class_b in itertools.combinations(self.classes_, 2):
            member_mask = (y == class_a) | (y == class_b)
            indices = np.flatnonzero(member_mask)
            binary_labels = np.where(y[indices] == class_a, 1.0, -1.0)
            machine = BinarySVM(self.c, tol=self.tol, max_iter=self.max_iter)
            machine.fit(k_matrix[np.ix_(indices, indices)], binary_labels)
            self._machines.append((class_a, class_b, indices, machine))
        return self

    def vote_margins(self, kernel_rows: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Per-class OvO votes and accumulated decision margins.

        Returns ``(votes, margins)``, both ``(n_test, n_classes)`` aligned
        with :attr:`classes_`: each pairwise machine adds one vote to its
        winner and its signed decision value to both classes' margin
        accumulators. The margins are what the serving layer reports as
        prediction confidence.
        """
        if self._machines is None or self.classes_ is None:
            raise NotFittedError("KernelSVC must be fitted before prediction")
        rows = np.asarray(kernel_rows, dtype=float)
        if rows.ndim != 2 or rows.shape[1] != self._n_train:
            raise ValidationError(
                f"kernel_rows must be (n_test, {self._n_train}), got {rows.shape}"
            )
        n_test = rows.shape[0]
        class_index = {c: i for i, c in enumerate(self.classes_)}
        votes = np.zeros((n_test, self.classes_.size))
        margins = np.zeros((n_test, self.classes_.size))
        for class_a, class_b, indices, machine in self._machines:
            decision = machine.decision_function(rows[:, indices])
            a_idx, b_idx = class_index[class_a], class_index[class_b]
            wins_a = decision >= 0
            votes[wins_a, a_idx] += 1
            votes[~wins_a, b_idx] += 1
            margins[:, a_idx] += decision
            margins[:, b_idx] -= decision
        return votes, margins

    def predict(self, kernel_rows: np.ndarray) -> np.ndarray:
        """Predict labels for test rows ``K(test, train)`` by OvO voting.

        Ties break toward the class with the larger accumulated decision
        margin, then toward the smaller class label (deterministic).
        Empty batches (``n_test == 0``) return an empty label array —
        ``np.ptp`` is undefined on zero-size margins.
        """
        votes, margins = self.vote_margins(kernel_rows)
        return self.labels_from_votes(votes, margins)

    def labels_from_votes(
        self, votes: np.ndarray, margins: np.ndarray
    ) -> np.ndarray:
        """Labels from a :meth:`vote_margins` result — the voting argmax
        without re-running the pairwise decision functions (the serving
        layer needs both labels and margins from one evaluation)."""
        if self.classes_ is None:
            raise NotFittedError("KernelSVC must be fitted before prediction")
        if votes.shape[0] == 0:
            return self.classes_[:0]
        # Lexicographic argmax: votes first, margins as tie-break.
        margin_range = np.ptp(margins) + 1.0
        score = votes + (margins / margin_range) * 0.5
        best = np.argmax(score, axis=1)
        return self.classes_[best]

    def score(self, kernel_rows: np.ndarray, labels) -> float:
        """Mean accuracy on the given test rows."""
        predictions = self.predict(kernel_rows)
        return float(np.mean(predictions == np.asarray(labels)))
