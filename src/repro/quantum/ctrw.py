"""Classical continuous-time random walk (CTRW) — the CTQW's foil.

Section II-A of the paper motivates the CTQW by contrast with its
classical counterpart: the CTRW is "controlled by a doubly stochastic
matrix", its evolution is governed by the low Laplacian frequencies, it is
irreversible, and it *totters* (probability mass sloshes back across the
edge it just crossed, revisiting vertex pairs redundantly). This module
implements that counterpart so the comparison is runnable rather than
rhetorical (``examples/ctqw_vs_ctrw.py``, ``tests/quantum/test_ctrw.py``).

The CTRW solves the heat equation on the graph,

    dp/dt = -L p,      p(t) = exp(-L t) p(0),

whose propagator ``exp(-L t)`` is symmetric and doubly stochastic for the
combinatorial Laplacian ``L = D - A``. As ``t`` grows, ``p(t)`` converges
monotonically to the uniform distribution on each connected component —
this is exactly the "dominated by the low spectrum frequencies" behaviour
(the spectral gap sets the only relevant time scale), whereas the CTQW's
occupation probabilities keep oscillating (interference) and retain
high-frequency spectral information forever.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantumError
from repro.graphs.graph import Graph
from repro.quantum.operators import hamiltonian_from_adjacency
from repro.utils.linalg import eigh_sorted
from repro.utils.validation import check_symmetric_matrix


class CTRW:
    """A continuous-time (classical) random walk on a weighted structure.

    Parameters
    ----------
    adjacency:
        Symmetric non-negative matrix defining the walk's structure.
    generator:
        Which operator generates the diffusion; ``"laplacian"`` (default,
        matching the CTQW Hamiltonian the paper uses) or
        ``"normalized_laplacian"``.
    initial_distribution:
        Probability vector at ``t = 0``; defaults to the degree
        distribution (the classical analogue of the CTQW's
        square-root-of-degrees initial state).
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        *,
        generator: str = "laplacian",
        initial_distribution: "np.ndarray | None" = None,
    ) -> None:
        self.adjacency = check_symmetric_matrix(adjacency, "adjacency")
        if self.adjacency.shape[0] == 0:
            raise QuantumError("CTRW needs at least one vertex")
        if generator not in ("laplacian", "normalized_laplacian"):
            raise QuantumError(
                f"generator must be 'laplacian' or 'normalized_laplacian', "
                f"got {generator!r}"
            )
        self.generator_kind = generator
        self.generator = hamiltonian_from_adjacency(
            self.adjacency,
            "laplacian" if generator == "laplacian" else "normalized_laplacian",
        )
        if initial_distribution is None:
            degrees = self.adjacency.sum(axis=1)
            total = float(degrees.sum())
            initial_distribution = (
                degrees / total
                if total > 0
                else np.full(self.adjacency.shape[0], 1.0 / self.adjacency.shape[0])
            )
        p0 = np.asarray(initial_distribution, dtype=float)
        if p0.ndim != 1 or p0.shape[0] != self.adjacency.shape[0]:
            raise QuantumError(
                f"initial_distribution must have {self.adjacency.shape[0]} "
                f"entries, got shape {p0.shape}"
            )
        if p0.min() < -1e-12 or not np.isclose(p0.sum(), 1.0):
            raise QuantumError("initial_distribution must be a probability vector")
        self.initial_distribution = np.clip(p0, 0.0, None)
        self._eigenvalues, self._eigenvectors = eigh_sorted(self.generator)

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "CTRW":
        """Build the walk for a :class:`Graph`."""
        return cls(graph.adjacency, **kwargs)

    @property
    def n_vertices(self) -> int:
        """Number of states (vertices)."""
        return self.adjacency.shape[0]

    @property
    def spectrum(self) -> np.ndarray:
        """Generator eigenvalues, ascending (lambda_1 = 0)."""
        return self._eigenvalues

    def propagator(self, t: float) -> np.ndarray:
        """The heat kernel ``exp(-L t)`` (symmetric, doubly stochastic)."""
        if t < 0:
            raise QuantumError(f"t must be >= 0, got {t}")
        decay = np.exp(-self._eigenvalues * float(t))
        v = self._eigenvectors
        return (v * decay) @ v.T

    def probabilities_at(self, t: float) -> np.ndarray:
        """The distribution ``p(t) = exp(-L t) p(0)``."""
        probs = self.propagator(t) @ self.initial_distribution
        probs = np.clip(probs, 0.0, None)
        total = probs.sum()
        return probs / total if total > 0 else probs

    def stationary_distribution(self) -> np.ndarray:
        """The ``t -> inf`` limit (uniform per connected component)."""
        # Projection onto the generator's null space applied to p(0).
        null_mask = np.abs(self._eigenvalues) < 1e-10
        v = self._eigenvectors[:, null_mask]
        return np.clip(v @ (v.T @ self.initial_distribution), 0.0, None)

    def mixing_time(self, epsilon: float = 1e-2, *, t_max: float = 1e3) -> float:
        """Smallest sampled ``t`` with total-variation distance < epsilon.

        Doubling search over ``t``; returns ``inf`` if not mixed by
        ``t_max`` (e.g. disconnected structure with a non-uniform limit).
        """
        if not 0 < epsilon < 1:
            raise QuantumError(f"epsilon must be in (0, 1), got {epsilon}")
        target = self.stationary_distribution()
        t = 1e-3
        while t <= t_max:
            distance = 0.5 * np.abs(self.probabilities_at(t) - target).sum()
            if distance < epsilon:
                return float(t)
            t *= 2.0
        return float("inf")


def return_probability_curve(
    walk, times: "np.ndarray | list", vertex: int
) -> np.ndarray:
    """Occupation probability of ``vertex`` over ``times`` for any walk.

    Works for both :class:`CTRW` and :class:`~repro.quantum.ctqw.CTQW`
    (anything exposing ``probabilities_at``). The tottering comparison
    plots these curves: the classical curve decays monotonically to the
    stationary value, the quantum curve keeps oscillating — the
    interference the paper credits with reducing tottering.
    """
    return np.asarray(
        [float(walk.probabilities_at(float(t))[vertex]) for t in times]
    )
