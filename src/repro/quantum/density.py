"""Time-averaged CTQW density matrices (paper Eq. 4/5).

The mixed state of a CTQW observed uniformly over ``[0, T]`` is

    rho_T = (1/T) \\int_0^T |psi_t><psi_t| dt.

As ``T -> inf`` the cross terms between *distinct* Hamiltonian eigenvalues
dephase to zero and the closed form of Eq. (5) remains:

    rho_inf = sum_lambda P_lambda |psi_0><psi_0| P_lambda,

where ``P_lambda`` projects onto the eigenspace of ``lambda``. For a real
symmetric Hamiltonian and real initial amplitudes this matrix is real,
symmetric, positive semidefinite and has unit trace — i.e. it is a proper
density matrix, which :func:`check_density_matrix` enforces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotDensityMatrixError, QuantumError
from repro.graphs.graph import Graph
from repro.quantum.operators import hamiltonian_from_adjacency
from repro.quantum.state import degree_initial_state
from repro.utils.linalg import (
    EIG_TOL,
    eigh_sorted,
    group_degenerate_eigenvalues,
)
from repro.utils.validation import check_symmetric_matrix

_DENSITY_TOL = 1e-7


def ctqw_density_matrix(
    adjacency: np.ndarray,
    *,
    hamiltonian: str = "laplacian",
    initial_state: "np.ndarray | None" = None,
    degeneracy_tol: float = EIG_TOL,
) -> np.ndarray:
    """The ``T -> inf`` time-averaged CTQW density matrix (Eq. 5).

    Parameters
    ----------
    adjacency:
        Symmetric non-negative structure matrix (a graph adjacency or an
        aligned adjacency from :mod:`repro.alignment.transform`).
    hamiltonian:
        Operator driving the walk; the paper uses the Laplacian.
    initial_state:
        Real amplitude vector at ``t = 0``; defaults to
        ``sqrt(degree distribution)`` per the paper.
    degeneracy_tol:
        Eigenvalues closer than this (relative to spectral magnitude) are
        treated as one eigenspace, which is what makes the closed form exact
        for degenerate spectra.
    """
    arr = check_symmetric_matrix(adjacency, "adjacency")
    n = arr.shape[0]
    if n == 0:
        raise QuantumError("cannot build a density matrix on 0 vertices")
    if initial_state is None:
        psi0 = degree_initial_state(arr)
    else:
        psi0 = np.asarray(initial_state, dtype=float)
        if psi0.shape != (n,):
            raise QuantumError(
                f"initial_state must have shape ({n},), got {psi0.shape}"
            )
        norm = float(np.linalg.norm(psi0))
        if norm <= 0:
            raise QuantumError("initial_state must be non-zero")
        psi0 = psi0 / norm

    hamiltonian_matrix = hamiltonian_from_adjacency(arr, hamiltonian)
    eigenvalues, eigenvectors = eigh_sorted(hamiltonian_matrix)
    coefficients = eigenvectors.T @ psi0  # <phi_a | psi_0>

    rho = np.zeros((n, n))
    for group in group_degenerate_eigenvalues(eigenvalues, tol=degeneracy_tol):
        # P_lambda |psi0> = sum_{a in B_lambda} <phi_a|psi0> |phi_a>
        projected = eigenvectors[:, group] @ coefficients[group]
        rho += np.outer(projected, projected)
    rho = (rho + rho.T) / 2.0
    return rho


def graph_density_matrix(graph: Graph, **kwargs) -> np.ndarray:
    """Eq. 5 density matrix of a :class:`Graph` with paper defaults."""
    return ctqw_density_matrix(graph.adjacency, **kwargs)


def finite_time_density_matrix(
    adjacency: np.ndarray,
    horizon: float,
    *,
    steps: int = 400,
    hamiltonian: str = "laplacian",
    initial_state: "np.ndarray | None" = None,
) -> np.ndarray:
    """Numerically integrate Eq. (4) on ``[0, horizon]`` (trapezoid rule).

    Exists to validate the closed form: as ``horizon`` grows this converges
    to :func:`ctqw_density_matrix`. Returns a real symmetric matrix (the
    imaginary parts of the average cancel for real ``psi_0``).
    """
    from repro.quantum.ctqw import CTQW

    if horizon <= 0:
        raise QuantumError(f"horizon must be > 0, got {horizon}")
    if steps < 2:
        raise QuantumError(f"steps must be >= 2, got {steps}")
    walk = CTQW(adjacency, hamiltonian=hamiltonian, initial_state=initial_state)
    times = np.linspace(0.0, horizon, steps)
    accumulator = np.zeros((walk.n_vertices, walk.n_vertices), dtype=complex)
    samples = []
    for t in times:
        state = walk.state_at(t)
        samples.append(np.outer(state, np.conj(state)))
    stacked = np.stack(samples)
    accumulator = np.trapezoid(stacked, times, axis=0) / horizon
    rho = accumulator.real
    return (rho + rho.T) / 2.0


def check_density_matrix(
    matrix: np.ndarray, *, name: str = "rho", tol: float = _DENSITY_TOL
) -> np.ndarray:
    """Validate that ``matrix`` is a density matrix (symmetric, PSD, trace 1)."""
    arr = check_symmetric_matrix(matrix, name)
    if arr.shape[0] == 0:
        raise NotDensityMatrixError(f"{name} is empty")
    trace = float(np.trace(arr))
    if abs(trace - 1.0) > tol * arr.shape[0]:
        raise NotDensityMatrixError(f"{name} must have unit trace, got {trace}")
    eigenvalues, _ = eigh_sorted(arr)
    if eigenvalues[0] < -tol:
        raise NotDensityMatrixError(
            f"{name} is not PSD (min eigenvalue {eigenvalues[0]:.3e})"
        )
    return arr


def purity(matrix: np.ndarray) -> float:
    """``tr(rho^2)`` — 1 for pure states, ``1/n`` for the maximally mixed."""
    arr = check_symmetric_matrix(matrix, "rho")
    return float(np.sum(arr * arr))


def mix_density_matrices(
    matrices: "list[np.ndarray]", weights: "list[float] | None" = None
) -> np.ndarray:
    """Convex mixture of equally-sized density matrices.

    The QJSD composite state ``(rho + sigma) / 2`` is the two-element case.
    """
    if not matrices:
        raise QuantumError("need at least one density matrix to mix")
    n = np.asarray(matrices[0]).shape[0]
    if weights is None:
        weights = [1.0 / len(matrices)] * len(matrices)
    if len(weights) != len(matrices):
        raise QuantumError("weights and matrices must have equal length")
    total = float(sum(weights))
    if total <= 0 or any(w < 0 for w in weights):
        raise QuantumError("weights must be non-negative and sum to > 0")
    out = np.zeros((n, n))
    for weight, matrix in zip(weights, matrices):
        arr = check_symmetric_matrix(matrix, "rho")
        if arr.shape[0] != n:
            raise QuantumError("density matrices must share a common size")
        out += (weight / total) * arr
    return out


def pad_density_matrix(matrix: np.ndarray, size: int) -> np.ndarray:
    """Zero-pad a density matrix to ``size x size`` (paper Section II-D).

    Padding with zero rows/columns preserves trace and PSD-ness; it is how
    the unaligned QJSK baseline compares graphs of different orders.
    """
    arr = check_symmetric_matrix(matrix, "rho")
    n = arr.shape[0]
    if size < n:
        raise QuantumError(f"cannot pad {n}x{n} density matrix down to {size}")
    if size == n:
        return arr.copy()
    out = np.zeros((size, size))
    out[:n, :n] = arr
    return out
