"""Quantum state helpers: initial CTQW states and state validation.

Following the paper (and ref. [32]), the CTQW starts in the pure state whose
amplitude at vertex ``u`` is the square root of the degree distribution:
``alpha_u(0) = sqrt(d_u / sum(d))``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantumError
from repro.utils.validation import check_symmetric_matrix

_NORM_TOL = 1e-8


def degree_initial_state(adjacency: np.ndarray) -> np.ndarray:
    """Initial amplitudes ``sqrt(d_u / sum(d))`` from a weighted adjacency.

    For an empty (edgeless) structure the degree distribution is undefined;
    we fall back to the uniform superposition, which keeps aligned structures
    with all-zero rows (prototypes no vertex maps to) well defined.
    """
    arr = check_symmetric_matrix(adjacency, "adjacency")
    n = arr.shape[0]
    if n == 0:
        return np.empty(0)
    degrees = np.clip(arr.sum(axis=1), 0.0, None)
    total = float(degrees.sum())
    if total <= 0.0:
        return np.full(n, 1.0 / np.sqrt(n))
    return np.sqrt(degrees / total)


def uniform_initial_state(n: int) -> np.ndarray:
    """The uniform superposition over ``n`` basis states."""
    if n <= 0:
        return np.empty(0)
    return np.full(n, 1.0 / np.sqrt(n))


def check_state_vector(state: np.ndarray, *, name: str = "state") -> np.ndarray:
    """Validate a (complex) amplitude vector: 1-D, finite, unit norm."""
    arr = np.asarray(state)
    if arr.ndim != 1:
        raise QuantumError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise QuantumError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr.real)) or not np.all(np.isfinite(np.asarray(arr).imag)):
        raise QuantumError(f"{name} contains non-finite amplitudes")
    norm = float(np.linalg.norm(arr))
    if abs(norm - 1.0) > _NORM_TOL * max(1.0, np.sqrt(arr.size)):
        raise QuantumError(f"{name} must have unit norm, got {norm}")
    return arr


def pure_state_density(state: np.ndarray) -> np.ndarray:
    """Outer product ``|psi><psi|`` of a validated state vector."""
    arr = check_state_vector(state)
    return np.outer(arr, np.conj(arr))
