"""Continuous-time quantum walk (CTQW) evolution.

Implements the Schrödinger evolution of paper Eq. (2)/(3):

    |psi_t> = Phi^T exp(-i Lambda t) Phi |psi_0>

(with the standard eigh convention ``H = V diag(w) V^T`` this reads
``|psi_t> = V exp(-i w t) V^T |psi_0>``) and the associated unitary.

The finite-time evolution is used by tests and the tottering/interference
example; the kernels themselves consume the *time-averaged* density matrix
from :mod:`repro.quantum.density`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantumError
from repro.graphs.graph import Graph
from repro.quantum.operators import hamiltonian_from_adjacency
from repro.quantum.state import check_state_vector, degree_initial_state
from repro.utils.linalg import eigh_sorted
from repro.utils.validation import check_symmetric_matrix


class CTQW:
    """A continuous-time quantum walk on a fixed (weighted) structure.

    Parameters
    ----------
    adjacency:
        Symmetric non-negative matrix defining the walk's structure.
    hamiltonian:
        Which operator drives the walk; the paper uses ``"laplacian"``.
    initial_state:
        Amplitude vector at ``t = 0``; defaults to the square root of the
        degree distribution, per the paper.
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        *,
        hamiltonian: str = "laplacian",
        initial_state: "np.ndarray | None" = None,
    ) -> None:
        self.adjacency = check_symmetric_matrix(adjacency, "adjacency")
        self.hamiltonian_kind = hamiltonian
        self.hamiltonian = hamiltonian_from_adjacency(self.adjacency, hamiltonian)
        if initial_state is None:
            initial_state = degree_initial_state(self.adjacency)
        if self.adjacency.shape[0] == 0:
            raise QuantumError("CTQW needs at least one vertex")
        self.initial_state = check_state_vector(
            np.asarray(initial_state, dtype=complex), name="initial_state"
        )
        if self.initial_state.shape[0] != self.adjacency.shape[0]:
            raise QuantumError(
                f"initial_state has {self.initial_state.shape[0]} amplitudes for "
                f"{self.adjacency.shape[0]} vertices"
            )
        self._eigenvalues, self._eigenvectors = eigh_sorted(self.hamiltonian)

    @classmethod
    def from_graph(cls, graph: Graph, **kwargs) -> "CTQW":
        """Build the walk for a :class:`Graph` (paper defaults)."""
        return cls(graph.adjacency, **kwargs)

    @property
    def n_vertices(self) -> int:
        """Dimension of the walk's Hilbert space."""
        return self.adjacency.shape[0]

    @property
    def spectrum(self) -> np.ndarray:
        """Hamiltonian eigenvalues, ascending."""
        return self._eigenvalues

    def unitary(self, t: float) -> np.ndarray:
        """The evolution operator ``U(t) = exp(-i H t)``."""
        phases = np.exp(-1j * self._eigenvalues * float(t))
        v = self._eigenvectors
        return (v * phases) @ v.conj().T

    def state_at(self, t: float) -> np.ndarray:
        """Amplitudes ``|psi_t>`` at time ``t`` (Eq. 3)."""
        coeffs = self._eigenvectors.T @ self.initial_state
        evolved = np.exp(-1j * self._eigenvalues * float(t)) * coeffs
        return self._eigenvectors @ evolved

    def probabilities_at(self, t: float) -> np.ndarray:
        """Vertex occupation probabilities ``|alpha_u(t)|^2``."""
        amplitudes = self.state_at(t)
        probs = np.abs(amplitudes) ** 2
        total = probs.sum()
        if total > 0:
            probs = probs / total  # wash out round-off so the vector sums to 1
        return probs

    def average_probabilities(self, horizon: float, steps: int = 200) -> np.ndarray:
        """Trapezoidal time average of occupation probabilities on [0, horizon].

        A sampled counterpart of the ``T -> inf`` limit used by the kernels;
        useful for visualising convergence to the mixed state.
        """
        if horizon <= 0:
            raise QuantumError(f"horizon must be > 0, got {horizon}")
        if steps < 2:
            raise QuantumError(f"steps must be >= 2, got {steps}")
        times = np.linspace(0.0, horizon, steps)
        samples = np.stack([self.probabilities_at(t) for t in times])
        return np.trapezoid(samples, times, axis=0) / horizon
