"""Quantum Jensen-Shannon divergence and relatives (paper Eq. 8/10).

    D_QJS(rho, sigma) = H_N((rho + sigma) / 2) - H_N(rho)/2 - H_N(sigma)/2

QJSD is symmetric, bounded by ``log 2`` (natural-log convention) and zero iff
the states coincide. The classical JSD over probability vectors and the
Jensen-Tsallis q-difference (JTQK baseline) live here too so every
divergence shares one tolerance policy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantumError
from repro.quantum.entropy import shannon_entropy, tsallis_entropy, von_neumann_entropy
from repro.utils.validation import check_in_range, check_symmetric_matrix

#: Upper bound of the (natural-log) quantum Jensen-Shannon divergence.
QJSD_MAX = float(np.log(2.0))


def quantum_jensen_shannon_divergence(
    rho: np.ndarray, sigma: np.ndarray
) -> float:
    """QJSD between two equally-sized density matrices (Eq. 8).

    The result is clipped into ``[0, log 2]``: round-off in the three
    eigendecompositions can push the raw value a hair outside its
    theoretical range, and downstream ``exp(-D)`` kernels expect the clean
    interval.
    """
    rho_arr = check_symmetric_matrix(rho, "rho")
    sigma_arr = check_symmetric_matrix(sigma, "sigma")
    if rho_arr.shape != sigma_arr.shape:
        raise QuantumError(
            f"density matrices must have equal shapes, got {rho_arr.shape} vs "
            f"{sigma_arr.shape}; pad or align first"
        )
    mixed = (rho_arr + sigma_arr) / 2.0
    divergence = (
        von_neumann_entropy(mixed)
        - 0.5 * von_neumann_entropy(rho_arr)
        - 0.5 * von_neumann_entropy(sigma_arr)
    )
    return float(np.clip(divergence, 0.0, QJSD_MAX))


def classical_jensen_shannon_divergence(
    p: np.ndarray, q: np.ndarray
) -> float:
    """Classical JSD between two probability vectors (natural log)."""
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise QuantumError(
            f"probability vectors must have equal shapes, got {p_arr.shape} vs {q_arr.shape}"
        )
    mixed = (p_arr + q_arr) / 2.0
    divergence = (
        shannon_entropy(mixed)
        - 0.5 * shannon_entropy(p_arr)
        - 0.5 * shannon_entropy(q_arr)
    )
    return float(np.clip(divergence, 0.0, QJSD_MAX))


def jensen_tsallis_q_difference(
    rho: np.ndarray, sigma: np.ndarray, q: float = 2.0
) -> float:
    """Jensen-Tsallis q-difference between density matrices.

    The quantum counterpart of the measure behind the JTQK baseline
    (ref. [44]):  ``T_q = S_q((rho+sigma)/2) - (S_q(rho) + S_q(sigma))/2``
    with ``S_q`` the Tsallis entropy. For ``q = 2`` the value lies in
    ``[0, 1/2]``.
    """
    q = check_in_range(q, "q", low=0.0, high=np.inf, low_inclusive=False)
    rho_arr = check_symmetric_matrix(rho, "rho")
    sigma_arr = check_symmetric_matrix(sigma, "sigma")
    if rho_arr.shape != sigma_arr.shape:
        raise QuantumError(
            f"density matrices must have equal shapes, got {rho_arr.shape} vs "
            f"{sigma_arr.shape}"
        )
    mixed = (rho_arr + sigma_arr) / 2.0
    difference = tsallis_entropy(mixed, q) - 0.5 * (
        tsallis_entropy(rho_arr, q) + tsallis_entropy(sigma_arr, q)
    )
    return float(max(difference, 0.0))


def qjsd_between_padded(rho: np.ndarray, sigma: np.ndarray) -> float:
    """QJSD after zero-padding the smaller matrix (unaligned QJSK protocol).

    This is exactly the Section II-D construction the paper criticises: it
    depends on the arbitrary vertex order, which the HAQJSK kernels fix.
    """
    from repro.quantum.density import pad_density_matrix

    rho_arr = check_symmetric_matrix(rho, "rho")
    sigma_arr = check_symmetric_matrix(sigma, "sigma")
    size = max(rho_arr.shape[0], sigma_arr.shape[0])
    return quantum_jensen_shannon_divergence(
        pad_density_matrix(rho_arr, size), pad_density_matrix(sigma_arr, size)
    )
