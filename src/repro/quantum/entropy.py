"""Entropies of quantum states and probability vectors.

Implements the von Neumann entropy (paper Eq. 6/7), its Rényi and Tsallis
generalisations (used by the SPEGK and JTQK baselines), and the classical
Shannon entropy used by the depth-based vertex representations.

All logarithms are natural, matching Eq. (6); entropies are reported in nats.
"""

from __future__ import annotations

import numpy as np

from repro.backend import DEFAULT_CHEBYSHEV_DEGREE, ComputePolicy, active_policy
from repro.errors import QuantumError
from repro.utils.linalg import eigh_sorted, safe_xlogx
from repro.utils.validation import check_in_range, check_symmetric_matrix

_EIG_CLIP = 0.0

#: Slack on ``sum(p)`` under which a distribution counts as normalised —
#: the :func:`shannon_entropy` fast path skips the clip-and-divide pass.
_CLEAN_TOTAL_TOL = 1e-12


def density_eigenvalues(matrix: np.ndarray) -> np.ndarray:
    """Eigenvalues of a density-like matrix, clipped to ``[0, inf)``.

    Round-off from the eigensolver can produce tiny negative values on PSD
    input; clipping keeps the entropy well defined without masking genuinely
    indefinite matrices (validation happens in
    :func:`repro.quantum.density.check_density_matrix`).
    """
    arr = check_symmetric_matrix(matrix, "rho")
    values, _ = eigh_sorted(arr)
    return np.clip(values, _EIG_CLIP, None)


def von_neumann_entropy(matrix: np.ndarray) -> float:
    """``H_N(rho) = -tr(rho log rho)`` via the eigenvalues (Eq. 6/7)."""
    values = density_eigenvalues(matrix)
    return float(-np.sum(safe_xlogx(values)))


def von_neumann_entropies(stack: np.ndarray, *, policy=None) -> np.ndarray:
    """Batched von Neumann entropies over a ``(..., n, n)`` matrix stack.

    The hot-path counterpart of :func:`von_neumann_entropy` used by the
    vectorized Gram engines (:mod:`repro.engine`): one stacked
    ``eigvalsh`` replaces a Python loop of per-matrix decompositions.
    Inputs are symmetrised exactly like :func:`repro.utils.linalg.eigh_sorted`
    so a stacked call agrees with the scalar path to solver round-off.

    ``policy`` selects the array backend, device precision and entropy
    path (:class:`repro.backend.ComputePolicy`); ``None`` uses the
    ambient :func:`repro.backend.active_policy`, which defaults to the
    bit-stable numpy/float64/eig reference.
    """
    arr = np.asarray(stack, dtype=float)
    if arr.ndim < 2 or arr.shape[-1] != arr.shape[-2]:
        raise QuantumError(
            f"expected a (..., n, n) stack of square matrices, got {arr.shape}"
        )
    if policy is None:
        policy = active_policy()
    return policy.entropies(arr, symmetrize=True)


def von_neumann_entropies_approx(
    stack: np.ndarray,
    *,
    degree: "int | None" = None,
    backend: str = "numpy",
    precision: str = "float32",
) -> np.ndarray:
    """Eigenvalue-free batched von Neumann entropies (Chebyshev path).

    Forces the :mod:`repro.backend.chebyshev` trace-estimation path
    regardless of the ambient policy — the explicit entry point for the
    documented approximate tolerance tier. ``degree`` defaults to
    :data:`repro.backend.DEFAULT_CHEBYSHEV_DEGREE` (~2e-3 max absolute
    entropy error); raise it to tighten the approximation.
    """
    arr = np.asarray(stack, dtype=float)
    if arr.ndim < 2 or arr.shape[-1] != arr.shape[-2]:
        raise QuantumError(
            f"expected a (..., n, n) stack of square matrices, got {arr.shape}"
        )
    policy = ComputePolicy(
        backend=backend,
        precision=precision,
        entropy="chebyshev",
        chebyshev_degree=DEFAULT_CHEBYSHEV_DEGREE if degree is None else degree,
    )
    return policy.entropies(arr, symmetrize=True)


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy of a probability vector (natural log, 0 log 0 = 0)."""
    arr = np.asarray(probabilities, dtype=float)
    if arr.ndim != 1:
        raise QuantumError(f"probabilities must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        return 0.0
    if np.any(arr < -1e-9):
        raise QuantumError("probabilities must be non-negative")
    total = float(arr.sum())
    if total <= 0:
        return 0.0
    if arr.min() >= 0.0 and abs(total - 1.0) <= _CLEAN_TOTAL_TOL:
        # Already a clean distribution: skip the clip-and-renormalise
        # pass entirely (the common case on the depth-based hot path).
        return float(-np.sum(safe_xlogx(arr)))
    normalised = np.clip(arr, 0.0, None) / total
    return float(-np.sum(safe_xlogx(normalised)))


def shannon_entropies(weights: np.ndarray) -> np.ndarray:
    """Batched Shannon entropies over the last axis of ``(..., n)`` weights.

    Each row is treated like :func:`shannon_entropy` treats its vector:
    negatives are clipped at zero, rows are normalised by their mass, and
    zero-mass rows get entropy 0 — but the whole batch normalises in one
    vectorised pass (the depth-based representations feed ``(B, levels)``
    degree-mass rows through this).
    """
    arr = np.asarray(weights, dtype=float)
    if arr.ndim < 1:
        raise QuantumError(f"weights must be at least 1-D, got shape {arr.shape}")
    if arr.size == 0:
        return np.zeros(arr.shape[:-1])
    if np.any(arr < -1e-9):
        raise QuantumError("weights must be non-negative")
    clipped = np.clip(arr, 0.0, None)
    totals = clipped.sum(axis=-1, keepdims=True)
    safe_totals = np.where(totals > 0.0, totals, 1.0)
    normalised = clipped / safe_totals
    # + 0.0 canonicalises the -0.0 a zero-mass row would otherwise yield.
    return -safe_xlogx(normalised).sum(axis=-1) + 0.0


def renyi_entropy(matrix: np.ndarray, alpha: float = 2.0) -> float:
    """Quantum Rényi entropy ``(1 - alpha)^-1 log tr(rho^alpha)``.

    ``alpha -> 1`` recovers von Neumann; ``alpha = 2`` is the second-order
    entropy used by the SPEGK/SREGK baseline (ref. [25]).
    """
    alpha = check_in_range(alpha, "alpha", low=0.0, high=np.inf, low_inclusive=False)
    if abs(alpha - 1.0) < 1e-12:
        return von_neumann_entropy(matrix)
    values = density_eigenvalues(matrix)
    total = float(values.sum())
    if total <= 0:
        return 0.0
    values = values / total
    power_sum = float(np.sum(values[values > 0] ** alpha))
    if power_sum <= 0:
        return 0.0
    return float(np.log(power_sum) / (1.0 - alpha))


def tsallis_entropy(matrix: np.ndarray, q: float = 2.0) -> float:
    """Quantum Tsallis entropy ``(1 - tr(rho^q)) / (q - 1)``.

    ``q = 2`` is the setting the JTQK baseline uses (ref. [44]).
    """
    q = check_in_range(q, "q", low=0.0, high=np.inf, low_inclusive=False)
    if abs(q - 1.0) < 1e-12:
        return von_neumann_entropy(matrix)
    values = density_eigenvalues(matrix)
    total = float(values.sum())
    if total <= 0:
        return 0.0
    values = values / total
    power_sum = float(np.sum(values[values > 0] ** q))
    return float((1.0 - power_sum) / (q - 1.0))


def graph_von_neumann_entropy(graph, **density_kwargs) -> float:
    """Von Neumann entropy of a graph's CTQW mixed state (Eq. 7)."""
    from repro.quantum.density import graph_density_matrix

    return von_neumann_entropy(graph_density_matrix(graph, **density_kwargs))
