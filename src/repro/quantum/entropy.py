"""Entropies of quantum states and probability vectors.

Implements the von Neumann entropy (paper Eq. 6/7), its Rényi and Tsallis
generalisations (used by the SPEGK and JTQK baselines), and the classical
Shannon entropy used by the depth-based vertex representations.

All logarithms are natural, matching Eq. (6); entropies are reported in nats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QuantumError
from repro.utils.linalg import eigh_sorted, safe_xlogx
from repro.utils.validation import check_in_range, check_symmetric_matrix

_EIG_CLIP = 0.0


def density_eigenvalues(matrix: np.ndarray) -> np.ndarray:
    """Eigenvalues of a density-like matrix, clipped to ``[0, inf)``.

    Round-off from the eigensolver can produce tiny negative values on PSD
    input; clipping keeps the entropy well defined without masking genuinely
    indefinite matrices (validation happens in
    :func:`repro.quantum.density.check_density_matrix`).
    """
    arr = check_symmetric_matrix(matrix, "rho")
    values, _ = eigh_sorted(arr)
    return np.clip(values, _EIG_CLIP, None)


def von_neumann_entropy(matrix: np.ndarray) -> float:
    """``H_N(rho) = -tr(rho log rho)`` via the eigenvalues (Eq. 6/7)."""
    values = density_eigenvalues(matrix)
    return float(-np.sum(safe_xlogx(values)))


def von_neumann_entropies(stack: np.ndarray) -> np.ndarray:
    """Batched von Neumann entropies over a ``(..., n, n)`` matrix stack.

    The hot-path counterpart of :func:`von_neumann_entropy` used by the
    vectorized Gram engines (:mod:`repro.engine`): one stacked
    ``eigvalsh`` replaces a Python loop of per-matrix decompositions.
    Inputs are symmetrised exactly like :func:`repro.utils.linalg.eigh_sorted`
    so a stacked call agrees with the scalar path to solver round-off.
    """
    arr = np.asarray(stack, dtype=float)
    if arr.ndim < 2 or arr.shape[-1] != arr.shape[-2]:
        raise QuantumError(
            f"expected a (..., n, n) stack of square matrices, got {arr.shape}"
        )
    sym = (arr + np.swapaxes(arr, -1, -2)) / 2.0
    values = np.clip(np.linalg.eigvalsh(sym), _EIG_CLIP, None)
    return -safe_xlogx(values).sum(axis=-1)


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy of a probability vector (natural log, 0 log 0 = 0)."""
    arr = np.asarray(probabilities, dtype=float)
    if arr.ndim != 1:
        raise QuantumError(f"probabilities must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        return 0.0
    if np.any(arr < -1e-9):
        raise QuantumError("probabilities must be non-negative")
    total = float(arr.sum())
    if total <= 0:
        return 0.0
    normalised = np.clip(arr, 0.0, None) / total
    return float(-np.sum(safe_xlogx(normalised)))


def renyi_entropy(matrix: np.ndarray, alpha: float = 2.0) -> float:
    """Quantum Rényi entropy ``(1 - alpha)^-1 log tr(rho^alpha)``.

    ``alpha -> 1`` recovers von Neumann; ``alpha = 2`` is the second-order
    entropy used by the SPEGK/SREGK baseline (ref. [25]).
    """
    alpha = check_in_range(alpha, "alpha", low=0.0, high=np.inf, low_inclusive=False)
    if abs(alpha - 1.0) < 1e-12:
        return von_neumann_entropy(matrix)
    values = density_eigenvalues(matrix)
    total = float(values.sum())
    if total <= 0:
        return 0.0
    values = values / total
    power_sum = float(np.sum(values[values > 0] ** alpha))
    if power_sum <= 0:
        return 0.0
    return float(np.log(power_sum) / (1.0 - alpha))


def tsallis_entropy(matrix: np.ndarray, q: float = 2.0) -> float:
    """Quantum Tsallis entropy ``(1 - tr(rho^q)) / (q - 1)``.

    ``q = 2`` is the setting the JTQK baseline uses (ref. [44]).
    """
    q = check_in_range(q, "q", low=0.0, high=np.inf, low_inclusive=False)
    if abs(q - 1.0) < 1e-12:
        return von_neumann_entropy(matrix)
    values = density_eigenvalues(matrix)
    total = float(values.sum())
    if total <= 0:
        return 0.0
    values = values / total
    power_sum = float(np.sum(values[values > 0] ** q))
    return float((1.0 - power_sum) / (q - 1.0))


def graph_von_neumann_entropy(graph, **density_kwargs) -> float:
    """Von Neumann entropy of a graph's CTQW mixed state (Eq. 7)."""
    from repro.quantum.density import graph_density_matrix

    return von_neumann_entropy(graph_density_matrix(graph, **density_kwargs))
