"""Hamiltonian operators for continuous-time quantum walks.

The paper fixes the Hamiltonian to the combinatorial Laplacian ``L = D - A``
(Section II-A); the adjacency and normalised-Laplacian alternatives are
provided for the ablation benchmarks (DESIGN.md calls the Hamiltonian choice
out as a design-ablation axis).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.graphs.ops import normalized_laplacian
from repro.utils.validation import check_symmetric_matrix

HamiltonianFn = Callable[[np.ndarray], np.ndarray]

#: Registry of named Hamiltonian constructions over adjacency matrices.
_HAMILTONIANS: dict = {}


def register_hamiltonian(name: str):
    """Decorator registering a Hamiltonian construction under ``name``."""

    def decorator(fn: HamiltonianFn) -> HamiltonianFn:
        _HAMILTONIANS[name] = fn
        return fn

    return decorator


@register_hamiltonian("laplacian")
def laplacian_hamiltonian(adjacency: np.ndarray) -> np.ndarray:
    """``L = D - A`` with weighted degrees — the paper's Hamiltonian."""
    arr = check_symmetric_matrix(adjacency, "adjacency")
    return np.diag(arr.sum(axis=1)) - arr


@register_hamiltonian("adjacency")
def adjacency_hamiltonian(adjacency: np.ndarray) -> np.ndarray:
    """The adjacency matrix itself (Farhi–Gutmann convention)."""
    return check_symmetric_matrix(adjacency, "adjacency")


@register_hamiltonian("normalized_laplacian")
def normalized_laplacian_hamiltonian(adjacency: np.ndarray) -> np.ndarray:
    """``I - D^{-1/2} A D^{-1/2}``; isolated vertices get identity rows."""
    arr = check_symmetric_matrix(adjacency, "adjacency")
    return normalized_laplacian(Graph(arr))


def hamiltonian_from_adjacency(
    adjacency: np.ndarray, kind: str = "laplacian"
) -> np.ndarray:
    """Build the named Hamiltonian from a (possibly weighted) adjacency."""
    try:
        builder = _HAMILTONIANS[kind]
    except KeyError:
        known = ", ".join(sorted(_HAMILTONIANS))
        raise ValidationError(f"unknown Hamiltonian {kind!r}; known: {known}") from None
    return builder(adjacency)


def available_hamiltonians() -> list:
    """Names of all registered Hamiltonian constructions."""
    return sorted(_HAMILTONIANS)
