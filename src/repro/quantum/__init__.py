"""Quantum substrate: CTQW, density matrices, entropies, QJSD."""

from repro.quantum.ctqw import CTQW
from repro.quantum.ctrw import CTRW, return_probability_curve
from repro.quantum.density import (
    check_density_matrix,
    ctqw_density_matrix,
    finite_time_density_matrix,
    graph_density_matrix,
    mix_density_matrices,
    pad_density_matrix,
    purity,
)
from repro.quantum.divergence import (
    QJSD_MAX,
    classical_jensen_shannon_divergence,
    jensen_tsallis_q_difference,
    qjsd_between_padded,
    quantum_jensen_shannon_divergence,
)
from repro.quantum.entropy import (
    graph_von_neumann_entropy,
    renyi_entropy,
    shannon_entropies,
    shannon_entropy,
    tsallis_entropy,
    von_neumann_entropies,
    von_neumann_entropies_approx,
    von_neumann_entropy,
)
from repro.quantum.operators import (
    available_hamiltonians,
    hamiltonian_from_adjacency,
)
from repro.quantum.state import (
    degree_initial_state,
    pure_state_density,
    uniform_initial_state,
)

__all__ = [
    "CTQW",
    "CTRW",
    "QJSD_MAX",
    "available_hamiltonians",
    "check_density_matrix",
    "classical_jensen_shannon_divergence",
    "ctqw_density_matrix",
    "degree_initial_state",
    "finite_time_density_matrix",
    "graph_density_matrix",
    "graph_von_neumann_entropy",
    "hamiltonian_from_adjacency",
    "jensen_tsallis_q_difference",
    "mix_density_matrices",
    "pad_density_matrix",
    "pure_state_density",
    "purity",
    "qjsd_between_padded",
    "quantum_jensen_shannon_divergence",
    "renyi_entropy",
    "return_probability_curve",
    "shannon_entropies",
    "shannon_entropy",
    "tsallis_entropy",
    "uniform_initial_state",
    "von_neumann_entropies",
    "von_neumann_entropies_approx",
    "von_neumann_entropy",
]
