"""Experiment campaigns: durable DAGs of content-keyed cells.

A campaign declares *what the paper needs computed* — Gram matrices,
CV evaluations, timing probes — as a DAG of :class:`CampaignNode` cells,
each keyed by exactly the inputs that determine its values
(:func:`node_key`: kernel fingerprint + dataset digest + the
value-relevant context record). The :class:`CampaignRunner` schedules
ready nodes through the sqlite :class:`~repro.jobs.JobQueue`, records
every outcome in a :class:`CampaignDB`, skips any node whose key already
has a recorded result, and survives SIGKILL at any instant:
``python -m repro.campaign resume`` recomputes only the unfinished
remainder and renders the identical report.
"""

from repro.campaign.db import NODE_STATUSES, CampaignDB, NodeState
from repro.campaign.nodes import (
    Campaign,
    CampaignNode,
    CampaignPlan,
    context_cache_record,
    node_key,
)
from repro.campaign.registry import (
    build_campaign,
    campaign_builder,
    register_campaign,
    register_executor,
    registered_campaigns,
)
from repro.campaign.runner import (
    CampaignRun,
    CampaignRunner,
    default_db_path,
    run_campaign_plan,
)

__all__ = [
    "NODE_STATUSES",
    "Campaign",
    "CampaignDB",
    "CampaignNode",
    "CampaignPlan",
    "CampaignRun",
    "CampaignRunner",
    "NodeState",
    "build_campaign",
    "campaign_builder",
    "context_cache_record",
    "default_db_path",
    "node_key",
    "register_campaign",
    "register_executor",
    "registered_campaigns",
    "run_campaign_plan",
]
