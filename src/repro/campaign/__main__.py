"""``python -m repro.campaign`` entry point."""

from repro.campaign.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
