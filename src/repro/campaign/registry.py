"""Registries wiring campaign kinds to executors and names to builders.

Two small decorator registries keep :mod:`repro.campaign` free of any
import on the experiments layer:

* ``@register_executor("table4.cell")`` registers the callable that runs
  one node of that kind: ``fn(payload, ctx) -> dict`` (JSON-able result).
* ``@register_campaign("table4")`` registers a *campaign builder*:
  ``fn(ctx=None, **options) -> CampaignPlan``.

The experiment modules register themselves at import; the CLI imports
:mod:`repro.experiments` lazily to populate both tables.
"""

from __future__ import annotations

import inspect

from repro.errors import CampaignError

_EXECUTORS: dict = {}
_BUILDERS: dict = {}


def register_executor(kind: str):
    """Class/function decorator registering the executor for ``kind``."""

    def decorate(fn):
        _EXECUTORS[str(kind)] = fn
        return fn

    return decorate


def executor_for(kind: str):
    """The registered executor, or a named error listing the known kinds."""
    _load_builtin_builders()
    try:
        return _EXECUTORS[str(kind)]
    except KeyError:
        known = ", ".join(sorted(_EXECUTORS)) or "(none registered)"
        raise CampaignError(
            f"no executor registered for node kind {kind!r}; known kinds: "
            f"{known}"
        ) from None


def register_campaign(name: str):
    """Decorator registering a campaign builder under ``name``."""

    def decorate(fn):
        _BUILDERS[str(name)] = fn
        return fn

    return decorate


def campaign_builder(name: str):
    """The registered builder, or a named error listing known campaigns."""
    _load_builtin_builders()
    try:
        return _BUILDERS[str(name)]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS)) or "(none registered)"
        raise CampaignError(
            f"unknown campaign {name!r}; registered campaigns: {known}"
        ) from None


def registered_campaigns() -> "list[str]":
    _load_builtin_builders()
    return sorted(_BUILDERS)


def build_campaign(name: str, *, ctx=None, **options):
    """Build a registered campaign, dropping options the builder does not
    accept (the CLI passes one option namespace to every builder)."""
    builder = campaign_builder(name)
    parameters = inspect.signature(builder).parameters
    lenient = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )
    accepted = {
        key: value for key, value in options.items()
        if lenient or key in parameters
    }
    return builder(ctx=ctx, **accepted)


def _load_builtin_builders() -> None:
    """Import the experiment modules that self-register (idempotent)."""
    import repro.experiments.complexity  # noqa: F401
    import repro.experiments.figure2  # noqa: F401
    import repro.experiments.table4  # noqa: F401
    import repro.experiments.table5  # noqa: F401
