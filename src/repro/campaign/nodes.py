"""Campaign DAGs: content-keyed cells with dependencies.

A campaign is a DAG of :class:`CampaignNode` cells — Gram computations,
CV evaluations, timing probes, report rows. Each node carries a *content
key* derived from exactly the inputs that determine its result values
(:func:`node_key`): the kernel's :meth:`KernelSpec.fingerprint`, the
dataset's collection digest, the value-relevant slice of the execution
context, and the node's own parameters. Two nodes with equal keys compute
equal results, so the runner can skip any node whose key already has a
recorded result — which is what makes "re-run the whole paper after a
kernel change, recomputing only what changed" a one-liner: the changed
kernel changes its cells' fingerprints, everything else key-matches and
is skipped. DESIGN.md, "Campaign node keys", documents the boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import CampaignError
from repro.store.artifacts import artifact_key

#: Bump to invalidate every previously recorded node key.
_NODE_KEY_VERSION = "campaign-node-v1"

#: ExecutionContext record fields that change computed *values*. The
#: complement — engine, tile size, store address, sinks, checkpointing —
#: is scheduling and persistence, which the engine-equivalence tests pin
#: to identical results, so it must NOT enter a node key: moving a
#: campaign to another store or engine must skip, not recompute.
_VALUE_FIELDS = ("normalize", "ensure_psd", "backend", "precision", "entropy")


def context_cache_record(ctx) -> dict:
    """The value-relevant slice of an execution context (or record).

    Accepts an :class:`~repro.api.ExecutionContext`, a ``to_record()``
    dict, or ``None`` (the default context). This — not the full record —
    is what enters :func:`node_key`: compute-policy fields change numbers
    (float32, Chebyshev), normalisation policy changes numbers,
    scheduling and persistence do not.
    """
    if ctx is None:
        record = {}
    elif isinstance(ctx, dict):
        record = ctx
    else:
        record = ctx.to_record()
    return {name: record.get(name) for name in _VALUE_FIELDS}


def node_key(
    kind: str,
    *,
    fingerprint: "str | None" = None,
    digest: "str | None" = None,
    ctx=None,
    params: "dict | None" = None,
) -> str:
    """The content key of one campaign node.

    ``fingerprint`` is the kernel's resolved-spec fingerprint (``None``
    for kernel-free nodes), ``digest`` the ordered collection digest of
    the dataset (``None`` for dataset-free nodes), ``ctx`` the execution
    context (reduced to its value-relevant fields), and ``params`` the
    node's own JSON-able parameters (seed, repeats, sweep point, ...).
    """
    payload = json.dumps(
        {
            "kind": str(kind),
            "kernel": fingerprint,
            "dataset": digest,
            "context": context_cache_record(ctx),
            "params": params or {},
        },
        sort_keys=True,
    )
    return artifact_key(_NODE_KEY_VERSION, payload)


@dataclass(frozen=True)
class CampaignNode:
    """One cell of a campaign DAG.

    ``name`` is the human-readable identity inside the campaign
    (``"gram:QJSK:MUTAG"``), ``kind`` selects the registered executor,
    ``key`` is the content key (:func:`node_key`), ``payload`` the
    JSON-able arguments the executor receives, and ``deps`` the names of
    nodes that must be ``done`` first.
    """

    name: str
    kind: str
    key: str
    payload: dict = field(default_factory=dict)
    deps: "tuple[str, ...]" = ()
    priority: int = 0

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise CampaignError("CampaignNode needs a non-empty name")
        if not str(self.kind).strip():
            raise CampaignError(f"node {self.name!r} needs a non-empty kind")
        if not str(self.key).strip():
            raise CampaignError(f"node {self.name!r} needs a content key")
        object.__setattr__(self, "deps", tuple(str(dep) for dep in self.deps))
        try:
            json.dumps(self.payload, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"node {self.name!r}: payload must be JSON-able "
                f"(executors may run in another process): {exc}"
            ) from None


class Campaign:
    """A validated DAG of :class:`CampaignNode` cells.

    Validation at construction: unique node names, every dependency
    present, no cycles. Node order is preserved (reports render rows in
    declaration order); :meth:`toposort` yields a dependency-respecting
    schedule that keeps the declared order among ready peers.
    """

    def __init__(self, name: str, nodes) -> None:
        if not str(name).strip():
            raise CampaignError("Campaign needs a non-empty name")
        self.name = str(name)
        self.nodes: "tuple[CampaignNode, ...]" = tuple(nodes)
        if not self.nodes:
            raise CampaignError(f"campaign {self.name!r} has no nodes")
        self._by_name: "dict[str, CampaignNode]" = {}
        for node in self.nodes:
            if node.name in self._by_name:
                raise CampaignError(
                    f"campaign {self.name!r}: duplicate node name {node.name!r}"
                )
            self._by_name[node.name] = node
        for node in self.nodes:
            for dep in node.deps:
                if dep not in self._by_name:
                    raise CampaignError(
                        f"campaign {self.name!r}: node {node.name!r} depends "
                        f"on unknown node {dep!r}"
                    )
        self._order = self._toposort()

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def campaign_id(self) -> str:
        """Content identity: the campaign name plus every (name, key).

        Resuming the same declared grid therefore lands on the same
        campaign row, while a changed kernel config (different node
        keys) is a *different* campaign whose unchanged nodes still
        skip through the key-level result reuse.
        """
        payload = json.dumps(
            [self.name] + [[node.name, node.key] for node in self.nodes],
            sort_keys=True,
        )
        return artifact_key("campaign-v1", payload)[:16]

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #

    def node(self, name: str) -> CampaignNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise CampaignError(
                f"campaign {self.name!r} has no node {name!r}"
            ) from None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def toposort(self) -> "tuple[CampaignNode, ...]":
        """Nodes in a dependency-respecting order (stable among peers)."""
        return self._order

    def dependents(self, name: str) -> "tuple[str, ...]":
        """Names of nodes that (transitively) depend on ``name``."""
        blocked: set = set()
        changed = True
        while changed:
            changed = False
            for node in self.nodes:
                if node.name in blocked:
                    continue
                if any(dep == name or dep in blocked for dep in node.deps):
                    blocked.add(node.name)
                    changed = True
        return tuple(n.name for n in self.nodes if n.name in blocked)

    def _toposort(self) -> "tuple[CampaignNode, ...]":
        remaining = {node.name: set(node.deps) for node in self.nodes}
        ordered: list = []
        while remaining:
            ready = [
                node for node in self.nodes
                if node.name in remaining and not remaining[node.name]
            ]
            if not ready:
                cycle = sorted(remaining)
                raise CampaignError(
                    f"campaign {self.name!r} has a dependency cycle among "
                    f"{cycle}"
                )
            for node in ready:
                ordered.append(node)
                del remaining[node.name]
            for deps in remaining.values():
                deps.difference_update(n.name for n in ready)
        return tuple(ordered)


@dataclass(frozen=True)
class CampaignPlan:
    """A campaign plus the renderer that turns its results into a report.

    ``render`` maps ``{node name: result dict}`` (done nodes only) to the
    report text — the thin row-formatting layer the experiment modules
    keep after the refactor.
    """

    campaign: Campaign
    render: "object" = None

    def report(self, results: "dict[str, dict]") -> str:
        if self.render is None:
            raise CampaignError(
                f"campaign {self.campaign.name!r} has no report renderer"
            )
        return self.render(results)
