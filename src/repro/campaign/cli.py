"""``python -m repro.campaign`` — run/status/resume/cancel campaigns.

One durable sqlite file (``--db``, or ``campaign.db`` inside the
``--store`` directory) carries both the campaign DAG state and the job
queue, so the whole lifecycle is::

    python -m repro.campaign run table4 --store /tmp/sweep
    # ... SIGKILL at any point ...
    python -m repro.campaign status --store /tmp/sweep
    python -m repro.campaign resume table4 --store /tmp/sweep

``resume`` is ``run`` under another name — running a campaign is
idempotent: nodes whose content keys are already recorded as done are
skipped, only the unfinished remainder executes.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.db import CampaignDB
from repro.campaign.registry import build_campaign, registered_campaigns
from repro.campaign.runner import CampaignRunner, default_db_path
from repro.errors import CampaignError, ReproError
from repro.jobs import JobQueue


def _add_db_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db",
        default=None,
        help="campaign database file (default: campaign.db inside --store)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="artifact-store address (dir:/path or bare path); also hosts "
        "the campaign database when --db is not given",
    )


def _context(args):
    from repro.experiments.config import execution_context

    return execution_context(args.store)


def _resolve_db_path(args, ctx, *, required: bool) -> "str | None":
    if args.db:
        return args.db
    path = default_db_path(ctx)
    if path is None and required:
        raise CampaignError(
            "no campaign database: pass --db FILE or --store DIR"
        )
    return path


def _build_plan(args, ctx):
    options = {
        "seed": args.seed,
        "n_repeats": args.repeats,
    }
    if args.kernels:
        options["kernels"] = args.kernels
    if args.datasets:
        options["datasets"] = args.datasets
    if args.models:
        options["models"] = args.models
    return build_campaign(args.campaign, ctx=ctx, **options)


def _cmd_run(args) -> int:
    ctx = _context(args)
    plan = _build_plan(args, ctx)
    db_path = _resolve_db_path(args, ctx, required=False)
    ephemeral = db_path is None
    if ephemeral:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="repro-campaign-")
        db_path = f"{tmp.name}/campaign.db"
        print(
            "note: no --db/--store given; campaign state is ephemeral "
            "(a killed run cannot be resumed)",
            file=sys.stderr,
        )
    db = CampaignDB(db_path)
    queue = JobQueue(db_path)
    try:
        run = CampaignRunner(plan, db, queue, ctx=ctx).run(
            max_nodes=args.max_nodes
        )
    finally:
        queue.close()
        db.close()
        if ephemeral:
            tmp.cleanup()
    print(run.summary(), file=sys.stderr)
    if args.report:
        report = run.report()
        with open(args.report, "w") as f:
            f.write(report if report.endswith("\n") else report + "\n")
        print(f"[report written to {args.report}]", file=sys.stderr)
    elif not run.failed and not run.blocked and not run.stopped:
        print(run.report())
    for state in run.failed:
        head = (state.error or "").strip().splitlines()
        print(
            f"failed: {state.name}: {head[-1] if head else '(no error recorded)'}",
            file=sys.stderr,
        )
    return 0 if run.ok else 1


def _cmd_status(args) -> int:
    ctx = _context(args)
    db = CampaignDB(_resolve_db_path(args, ctx, required=True))
    try:
        campaigns = db.campaigns()
        if not campaigns:
            print("no campaigns recorded")
            return 0
        selected = [
            c for c in campaigns
            if args.campaign in (None, c["id"], c["name"])
        ]
        if not selected:
            known = ", ".join(f"{c['id']} ({c['name']})" for c in campaigns)
            print(
                f"no campaign {args.campaign!r}; recorded: {known}",
                file=sys.stderr,
            )
            return 2
        exit_code = 0
        for entry in selected:
            print(
                f"{entry['id']}  {entry['name']}: "
                + ", ".join(
                    f"{entry[s]} {s}"
                    for s in ("pending", "running", "done", "failed", "cancelled")
                    if entry[s]
                )
            )
            for state in db.node_states(entry["id"]).values():
                if args.nodes:
                    flag = " (reused)" if state.reused else ""
                    print(f"  {state.status:>9}  {state.name}{flag}")
            for state in db.failed_nodes(entry["id"]):
                exit_code = 1
                print(f"  failed node {state.name}:")
                for line in (state.error or "(no error recorded)").strip().splitlines():
                    print(f"    {line}")
        return exit_code
    finally:
        db.close()


def _cmd_cancel(args) -> int:
    ctx = _context(args)
    db_path = _resolve_db_path(args, ctx, required=True)
    db = CampaignDB(db_path)
    queue = JobQueue(db_path)
    try:
        campaigns = db.campaigns()
        selected = [
            c for c in campaigns
            if args.campaign in (c["id"], c["name"])
        ]
        if not selected:
            known = ", ".join(f"{c['id']} ({c['name']})" for c in campaigns)
            print(
                f"no campaign {args.campaign!r}; recorded: "
                f"{known or '(none)'}",
                file=sys.stderr,
            )
            return 2
        for entry in selected:
            moved = db.cancel_pending(entry["id"])
            for job in queue.list_jobs(kind=f"campaign:{entry['id']}"):
                if job.status in ("pending", "running"):
                    queue.cancel(job.id)
            print(f"{entry['id']}  {entry['name']}: cancelled {moved} nodes")
        return 0
    finally:
        queue.close()
        db.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Durable experiment campaigns: declare, run, kill, resume.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_run_like(name: str, help_text: str):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "campaign",
            help=f"registered campaign ({', '.join(registered_campaigns())})",
        )
        _add_db_arguments(sub)
        sub.add_argument("--kernels", nargs="*", default=None)
        sub.add_argument("--datasets", nargs="*", default=None)
        sub.add_argument("--models", nargs="*", default=None)
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--repeats", type=int, default=None)
        sub.add_argument(
            "--max-nodes",
            type=int,
            default=None,
            help="stop after executing this many nodes (testing hook)",
        )
        sub.add_argument(
            "--report",
            default=None,
            help="write the rendered report to this file",
        )
        sub.set_defaults(handler=_cmd_run)
        return sub

    add_run_like("run", "declare the campaign and run every unfinished node")
    add_run_like(
        "resume",
        "synonym of run: re-declare and execute only what is not done",
    )

    status = commands.add_parser(
        "status", help="recorded campaigns, node counts, failed-node errors"
    )
    _add_db_arguments(status)
    status.add_argument(
        "--campaign", default=None, help="limit to one campaign id or name"
    )
    status.add_argument(
        "--nodes", action="store_true", help="list every node's status"
    )
    status.set_defaults(handler=_cmd_status)

    cancel = commands.add_parser(
        "cancel", help="cancel a campaign's pending/running nodes and jobs"
    )
    cancel.add_argument("campaign", help="campaign id or name to cancel")
    _add_db_arguments(cancel)
    cancel.set_defaults(handler=_cmd_cancel)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
