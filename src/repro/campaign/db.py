"""The sqlite campaign database: durable per-node state for DAG runs.

One file records every campaign it has ever scheduled: a ``campaigns``
row per DAG and a ``campaign_nodes`` row per cell, holding the node's
content key, payload, status, JSON result and stored exception. The file
usually also carries the :class:`~repro.jobs.JobQueue` tables (both
subsystems share one database path), so a campaign's full scheduling
state survives SIGKILL as a single crash-consistent artifact.

Resume semantics live here:

* :meth:`CampaignDB.ensure` upserts a campaign's declared nodes. A node
  whose recorded key matches keeps its status (``done`` stays done — the
  skip on resume); a node whose key *changed* (edited kernel config under
  the same grid position) is reset to ``pending``.
* :meth:`CampaignDB.reset_running` returns nodes a dead process left
  ``running`` to ``pending``.
* :meth:`CampaignDB.result_for_key` finds a done result recorded under
  the same content key by any campaign in the file — cross-campaign
  reuse, the DB-level mirror of the artifact store's content addressing.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.campaign.nodes import Campaign
from repro.errors import CampaignError

#: Every status a campaign node can hold.
NODE_STATUSES = ("pending", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_nodes (
    campaign TEXT NOT NULL,
    name TEXT NOT NULL,
    kind TEXT NOT NULL,
    key TEXT NOT NULL,
    payload TEXT NOT NULL DEFAULT '{}',
    deps TEXT NOT NULL DEFAULT '[]',
    position INTEGER NOT NULL DEFAULT 0,
    status TEXT NOT NULL DEFAULT 'pending',
    reused INTEGER NOT NULL DEFAULT 0,
    result TEXT,
    error TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    started_at REAL,
    finished_at REAL,
    updated_at REAL NOT NULL,
    PRIMARY KEY (campaign, name)
);
CREATE INDEX IF NOT EXISTS campaign_nodes_key ON campaign_nodes(key, status);
"""


@dataclass(frozen=True)
class NodeState:
    """One snapshot of a campaign node's recorded state."""

    campaign: str
    name: str
    kind: str
    key: str
    payload: dict
    deps: "tuple[str, ...]"
    status: str
    reused: bool
    result: "dict | None"
    error: "str | None"
    attempts: int

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "NodeState":
        return cls(
            campaign=row["campaign"],
            name=row["name"],
            kind=row["kind"],
            key=row["key"],
            payload=json.loads(row["payload"]),
            deps=tuple(json.loads(row["deps"])),
            status=row["status"],
            reused=bool(row["reused"]),
            result=None if row["result"] is None else json.loads(row["result"]),
            error=row["error"],
            attempts=int(row["attempts"]),
        )


class CampaignDB:
    """Durable campaign/node state over one sqlite file.

    ``path`` may be shared with a :class:`~repro.jobs.JobQueue` (the
    tables are disjoint); ``clock`` is injectable for tests.
    """

    def __init__(self, path: str, *, clock=time.time) -> None:
        if not str(path).strip():
            raise CampaignError("CampaignDB needs a database path")
        self.path = str(path)
        self.clock = clock
        self._lock = threading.Lock()
        if self.path != ":memory:":
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if self.path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------ #
    # Transaction discipline (REPRO005): every statement on the shared
    # connection runs inside one of these two helpers.
    # ------------------------------------------------------------------ #

    @contextmanager
    def _txn(self):
        """One committed write transaction (``BEGIN IMMEDIATE``).

        Same contract as :meth:`repro.jobs.queue.JobQueue._txn`: the
        write lock is taken up front, and every exit path commits or
        rolls back, so a SIGKILL anywhere inside leaves whole rows.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self._conn
            except BaseException:
                if self._conn.in_transaction:
                    self._conn.execute("ROLLBACK")
                raise
            else:
                self._conn.execute("COMMIT")

    @contextmanager
    def _read(self):
        """The shared connection for reads (thread lock, no transaction)."""
        with self._lock:
            yield self._conn

    # ------------------------------------------------------------------ #
    # Campaign registration / resume
    # ------------------------------------------------------------------ #

    def ensure(self, campaign: Campaign) -> str:
        """Upsert the campaign's declared nodes; returns the campaign id.

        Existing nodes keep their recorded state when their content key
        is unchanged; a changed key resets the node to ``pending`` (its
        inputs changed, its old result is stale). Nodes no longer in the
        declaration are removed.
        """
        cid = campaign.campaign_id
        now = self.clock()
        with self._txn() as conn:
            conn.execute(
                "INSERT INTO campaigns (id, name, created_at, updated_at) "
                "VALUES (?, ?, ?, ?) ON CONFLICT(id) DO UPDATE SET "
                "updated_at=excluded.updated_at",
                (cid, campaign.name, now, now),
            )
            declared = {node.name for node in campaign}
            rows = conn.execute(
                "SELECT name, key FROM campaign_nodes WHERE campaign=?",
                (cid,),
            ).fetchall()
            recorded = {row["name"]: row["key"] for row in rows}
            for stale in set(recorded) - declared:
                conn.execute(
                    "DELETE FROM campaign_nodes WHERE campaign=? AND name=?",
                    (cid, stale),
                )
            for position, node in enumerate(campaign):
                payload = json.dumps(node.payload, sort_keys=True)
                deps = json.dumps(list(node.deps))
                if node.name not in recorded:
                    conn.execute(
                        "INSERT INTO campaign_nodes (campaign, name, kind, "
                        "key, payload, deps, position, updated_at) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (cid, node.name, node.kind, node.key, payload,
                         deps, position, now),
                    )
                elif recorded[node.name] != node.key:
                    conn.execute(
                        "UPDATE campaign_nodes SET kind=?, key=?, "
                        "payload=?, deps=?, position=?, status='pending', "
                        "reused=0, result=NULL, error=NULL, attempts=0, "
                        "started_at=NULL, finished_at=NULL, updated_at=? "
                        "WHERE campaign=? AND name=?",
                        (node.kind, node.key, payload, deps, position,
                         now, cid, node.name),
                    )
                else:
                    conn.execute(
                        "UPDATE campaign_nodes SET kind=?, payload=?, "
                        "deps=?, position=?, updated_at=? "
                        "WHERE campaign=? AND name=?",
                        (node.kind, payload, deps, position, now, cid,
                         node.name),
                    )
        return cid

    def reset_running(self, campaign_id: str) -> int:
        """Nodes a dead process left ``running`` go back to ``pending``."""
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE campaign_nodes SET status='pending', updated_at=? "
                "WHERE campaign=? AND status='running'",
                (self.clock(), str(campaign_id)),
            )
        return cursor.rowcount

    # ------------------------------------------------------------------ #
    # Node transitions
    # ------------------------------------------------------------------ #

    def mark_running(self, campaign_id: str, name: str) -> None:
        now = self.clock()
        self._transition(
            campaign_id, name,
            "status='running', attempts=attempts+1, started_at=?, updated_at=?",
            (now, now),
        )

    def mark_done(
        self, campaign_id: str, name: str, result: "dict | None",
        *, reused: bool = False,
    ) -> None:
        now = self.clock()
        self._transition(
            campaign_id, name,
            "status='done', result=?, error=NULL, reused=?, finished_at=?, "
            "updated_at=?",
            (json.dumps(result, sort_keys=True) if result is not None else None,
             1 if reused else 0, now, now),
        )

    def mark_failed(self, campaign_id: str, name: str, error: str) -> None:
        now = self.clock()
        self._transition(
            campaign_id, name,
            "status='failed', error=?, finished_at=?, updated_at=?",
            (str(error), now, now),
        )

    def revive(self, campaign_id: str) -> int:
        """Failed/cancelled nodes return to ``pending``, errors cleared.

        ``run``/``resume`` call this first: running a campaign again is
        the retry. ``done`` rows are untouched — the skip-by-key resume
        path never recomputes a recorded result.
        """
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE campaign_nodes SET status='pending', error=NULL, "
                "finished_at=NULL, updated_at=? "
                "WHERE campaign=? AND status IN ('failed', 'cancelled')",
                (self.clock(), str(campaign_id)),
            )
        return cursor.rowcount

    def cancel_pending(self, campaign_id: str) -> int:
        """Cancel every pending/running node; returns how many moved."""
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE campaign_nodes SET status='cancelled', updated_at=? "
                "WHERE campaign=? AND status IN ('pending', 'running')",
                (self.clock(), str(campaign_id)),
            )
        return cursor.rowcount

    def _transition(self, campaign_id: str, name: str, set_clause: str, params) -> None:
        with self._txn() as conn:
            cursor = conn.execute(
                f"UPDATE campaign_nodes SET {set_clause} "
                "WHERE campaign=? AND name=?",
                tuple(params) + (str(campaign_id), str(name)),
            )
        if cursor.rowcount == 0:
            raise CampaignError(
                f"campaign {campaign_id!r} has no node {name!r} in {self.path!r}"
            )

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def node_states(self, campaign_id: str) -> "dict[str, NodeState]":
        """Every node of the campaign, in declared order."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT * FROM campaign_nodes WHERE campaign=? "
                "ORDER BY position ASC",
                (str(campaign_id),),
            ).fetchall()
        return {row["name"]: NodeState.from_row(row) for row in rows}

    def results(self, campaign_id: str) -> "dict[str, dict]":
        """``{name: result}`` over the campaign's done nodes."""
        return {
            name: state.result
            for name, state in self.node_states(campaign_id).items()
            if state.status == "done"
        }

    def counts(self, campaign_id: str) -> "dict[str, int]":
        counts = {status: 0 for status in NODE_STATUSES}
        for state in self.node_states(campaign_id).values():
            counts[state.status] += 1
        return counts

    def failed_nodes(self, campaign_id: str) -> "list[NodeState]":
        return [
            state for state in self.node_states(campaign_id).values()
            if state.status == "failed"
        ]

    def result_for_key(
        self, key: str, *, exclude: "tuple[str, str] | None" = None
    ) -> "dict | None":
        """A done result recorded under ``key`` by any campaign, if any.

        ``exclude`` names one ``(campaign, node)`` to skip — the node
        currently being scheduled must not reuse itself. ``done`` rows
        with a ``NULL`` result cannot be distinguished from "no result",
        so executors always return at least an empty dict.
        """
        query = (
            "SELECT campaign, name, result FROM campaign_nodes "
            "WHERE key=? AND status='done' AND result IS NOT NULL"
        )
        params: list = [str(key)]
        if exclude is not None:
            query += " AND NOT (campaign=? AND name=?)"
            params.extend([str(exclude[0]), str(exclude[1])])
        query += " ORDER BY finished_at DESC LIMIT 1"
        with self._read() as conn:
            row = conn.execute(query, params).fetchone()
        return None if row is None else json.loads(row["result"])

    def campaigns(self) -> "list[dict]":
        """Every recorded campaign: id, name, per-status node counts."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT id, name, created_at FROM campaigns "
                "ORDER BY created_at ASC"
            ).fetchall()
        listed = []
        for row in rows:
            entry = {"id": row["id"], "name": row["name"]}
            entry.update(self.counts(row["id"]))
            listed.append(entry)
        return listed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CampaignDB(path={self.path!r})"
