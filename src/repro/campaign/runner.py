"""The campaign runner: schedule ready DAG nodes through the job queue.

One :class:`CampaignRunner` drives one campaign to completion:

1. :meth:`~repro.campaign.db.CampaignDB.ensure` upserts the declared
   nodes (unchanged keys keep their state — the resume path), dead
   ``running`` rows return to ``pending``, stale queue leases requeue;
2. every ``pending`` node whose dependencies are all ``done`` is either
   *skipped* — its content key already has a recorded result
   (:meth:`~repro.campaign.db.CampaignDB.result_for_key`) — or submitted
   to the :class:`~repro.jobs.JobQueue`;
3. the runner claims jobs back off the queue and executes them through
   the registered executors, recording results / stored exceptions in
   the campaign DB, until nothing is runnable.

The queue looks redundant while the runner both produces and consumes,
but it is the point of the design: scheduling state lives in the same
durable sqlite file as the campaign, a SIGKILL at any instant loses at
most the node that was mid-execution, and the future serving layer can
point external workers at the very same queue without changing the DAG
layer. Failed nodes stay failed (their dependents are *blocked*, not
cancelled); ``resume`` revives them by resubmitting the same keys.
"""

from __future__ import annotations

import os
import socket
import tempfile
import traceback
from dataclasses import dataclass, field

from repro.campaign.db import CampaignDB, NodeState
from repro.campaign.nodes import Campaign, CampaignPlan
from repro.campaign.registry import executor_for
from repro.errors import CampaignError
from repro.jobs import JobQueue

#: Queue-kind prefix of campaign node jobs (one kind per campaign, so
#: several campaigns can share a queue file without claiming each
#: other's work).
JOB_KIND_PREFIX = "campaign:"


@dataclass
class CampaignRun:
    """The outcome of one :meth:`CampaignRunner.run` call."""

    campaign_id: str
    plan: CampaignPlan
    counts: "dict[str, int]"
    results: "dict[str, dict]"
    failed: "list[NodeState]" = field(default_factory=list)
    blocked: "list[str]" = field(default_factory=list)
    executed: int = 0
    reused: int = 0
    restored: int = 0
    stopped: bool = False

    @property
    def ok(self) -> bool:
        """True when every node is done (nothing failed/blocked/stopped)."""
        return not self.failed and not self.blocked and not self.stopped

    def report(self) -> str:
        """The plan's report, rendered from the done-node results."""
        return self.plan.report(self.results)

    def summary(self) -> str:
        """One status line: ``done a/b (executed x, skipped y, ...)``."""
        total = sum(self.counts.values())
        parts = [f"executed {self.executed}", f"skipped {self.restored + self.reused}"]
        if self.failed:
            parts.append(f"failed {len(self.failed)}")
        if self.blocked:
            parts.append(f"blocked {len(self.blocked)}")
        return (
            f"campaign {self.campaign_id}: done {self.counts['done']}/{total} "
            f"({', '.join(parts)})"
        )


class CampaignRunner:
    """Schedules one campaign's ready nodes through a durable job queue.

    Parameters
    ----------
    plan:
        A :class:`~repro.campaign.nodes.CampaignPlan` (or bare
        :class:`~repro.campaign.nodes.Campaign`).
    db:
        The :class:`~repro.campaign.db.CampaignDB` recording node state.
    queue:
        The :class:`~repro.jobs.JobQueue` to schedule through; defaults
        to one sharing the campaign DB's sqlite file.
    ctx:
        The :class:`~repro.api.ExecutionContext` handed to every
        executor (engine, store, compute policy).
    """

    def __init__(
        self,
        plan: "CampaignPlan | Campaign",
        db: CampaignDB,
        queue: "JobQueue | None" = None,
        *,
        ctx=None,
        worker_id: "str | None" = None,
    ) -> None:
        if isinstance(plan, Campaign):
            plan = CampaignPlan(plan)
        if not isinstance(plan, CampaignPlan):
            raise CampaignError(
                f"CampaignRunner needs a CampaignPlan or Campaign, got "
                f"{type(plan).__name__}"
            )
        self.plan = plan
        self.campaign = plan.campaign
        self.db = db
        self.queue = queue if queue is not None else JobQueue(db.path)
        self.ctx = ctx
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, *, max_nodes: "int | None" = None) -> CampaignRun:
        """Drive the campaign until nothing is runnable.

        ``max_nodes`` stops after executing that many nodes — the
        testing hook the kill/resume suites use to leave a campaign
        half-finished deterministically.
        """
        cid = self.db.ensure(self.campaign)
        self.db.reset_running(cid)
        self.db.revive(cid)
        self.queue.requeue_expired()
        states = self.db.node_states(cid)
        self._reconcile(cid, states)
        restored = sum(1 for s in states.values() if s.status == "done")
        executed = reused = 0
        stopped = False
        kind = JOB_KIND_PREFIX + cid
        while True:
            states = self.db.node_states(cid)
            progressed = False
            for node in self.campaign.toposort():
                state = states[node.name]
                if state.status != "pending":
                    continue
                if not all(
                    states[dep].status == "done" for dep in node.deps
                ):
                    continue
                recorded = self.db.result_for_key(
                    node.key, exclude=(cid, node.name)
                )
                if recorded is not None:
                    # Same content key, already computed (this file, any
                    # campaign): skip the node, adopt the result.
                    self.db.mark_done(cid, node.name, recorded, reused=True)
                    states = self.db.node_states(cid)
                    reused += 1
                    progressed = True
                    continue
                self.queue.submit(
                    kind,
                    {"campaign": cid, "node": node.name},
                    key=self._job_key(node),
                    priority=node.priority,
                )
            job = self.queue.claim(self.worker_id, kinds=(kind,))
            if job is None:
                if progressed:
                    continue
                break
            name = job.payload["node"]
            node = self.campaign.node(name)
            if self.db.node_states(cid)[name].status == "done":
                # Completed by a concurrent runner between submit and claim.
                self.queue.complete(job.id)
                continue
            self.db.mark_running(cid, name)
            try:
                result = executor_for(node.kind)(dict(node.payload), self.ctx)
                if result is None:
                    result = {}
                self.db.mark_done(cid, name, result)
                self.queue.complete(job.id, result if result else None)
                executed += 1
            except KeyboardInterrupt:
                # Leave the node pending so a resume re-runs it cleanly.
                self.db.reset_running(cid)
                self.queue.fail(job.id, "interrupted")
                raise
            except Exception:
                error = traceback.format_exc()
                self.db.mark_failed(cid, name, error)
                self.queue.fail(job.id, error)
            if max_nodes is not None and executed >= max_nodes:
                stopped = self._unfinished(cid)
                break
        return self._outcome(
            cid, executed=executed, reused=reused, restored=restored,
            stopped=stopped,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _job_key(self, node) -> str:
        # The node's content key is part of the queue identity, so a
        # node whose inputs changed gets a fresh job row instead of
        # colliding with the stale done/failed one.
        return f"{self.campaign.campaign_id}:{node.name}:{node.key[:16]}"

    def _reconcile(self, cid: str, states: "dict[str, NodeState]") -> None:
        """Heal queue/DB divergence a crash may have left behind.

        A node ``pending`` in the DB whose queue job is still ``running``
        is a torn claim from a killed run — the campaign DB is the
        authority, so the job returns to pending immediately rather than
        after its lease expires. The inverse tear (node ``done``, job
        ``running``: killed between the DB commit and the queue ack) is
        closed by completing the job.
        """
        for state in states.values():
            job = self.queue.by_key(
                f"{cid}:{state.name}:{state.key[:16]}"
            )
            if job is None or job.status != "running":
                continue
            if state.status == "done":
                self.queue.complete(job.id)
            else:
                self.queue.requeue(job.id)

    def _unfinished(self, cid: str) -> bool:
        counts = self.db.counts(cid)
        return counts["pending"] > 0 or counts["running"] > 0

    def _outcome(self, cid, *, executed, reused, restored, stopped) -> CampaignRun:
        states = self.db.node_states(cid)
        failed = [s for s in states.values() if s.status == "failed"]
        blocked = []
        for name, state in states.items():
            if state.status != "pending":
                continue
            broken = [
                dep for dep in state.deps
                if states[dep].status in ("failed", "cancelled")
                or dep in blocked
            ]
            if broken and not stopped:
                blocked.append(name)
        return CampaignRun(
            campaign_id=cid,
            plan=self.plan,
            counts=self.db.counts(cid),
            results=self.db.results(cid),
            failed=failed,
            blocked=blocked,
            executed=executed,
            reused=reused,
            restored=restored,
            stopped=stopped,
        )


def default_db_path(ctx) -> "str | None":
    """The campaign database that rides the context's store, if any.

    A directory-backed store hosts ``campaign.db`` next to its
    artifacts, so one ``--store`` flag gives a sweep both its Gram cache
    and its durable schedule; address-only backends (``mem:``) have no
    local file to offer.
    """
    store = getattr(ctx, "store", None)
    if store is None:
        return None
    path = store.backend.local_path("campaign.db")
    return path


def run_campaign_plan(
    plan: CampaignPlan,
    *,
    ctx=None,
    db: "CampaignDB | None" = None,
    db_path: "str | None" = None,
    max_nodes: "int | None" = None,
) -> CampaignRun:
    """Build the runner plumbing around ``plan`` and run it.

    Database resolution: an explicit ``db`` or ``db_path`` wins, else
    the context's store hosts ``campaign.db``
    (:func:`default_db_path`), else the run is ephemeral — scheduled
    through a throwaway sqlite file that is deleted afterwards (the
    in-process convenience path ``run_table4`` and friends use).
    """
    ephemeral_dir = None
    close_db = False
    if db is None:
        if db_path is None:
            db_path = default_db_path(ctx)
        if db_path is None:
            ephemeral_dir = tempfile.TemporaryDirectory(prefix="repro-campaign-")
            db_path = os.path.join(ephemeral_dir.name, "campaign.db")
        db = CampaignDB(db_path)
        close_db = True
    queue = JobQueue(db.path)
    runner = CampaignRunner(plan, db, queue, ctx=ctx)
    try:
        return runner.run(max_nodes=max_nodes)
    finally:
        queue.close()
        if close_db:
            db.close()
        if ephemeral_dir is not None:
            ephemeral_dir.cleanup()
