"""From-scratch k-means clustering (Lloyd's algorithm + k-means++ seeding).

scikit-learn is not available in the reproduction environment, so the
κ-means step of paper Eq. (13) is implemented here. The implementation is
deterministic for a fixed seed, handles empty clusters by re-seeding them on
the farthest points, and supports warm starts (used to keep prototype
indexings consistent across DB-representation dimensions; see
:mod:`repro.alignment.prototypes`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError, ValidationError
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int


class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    centers:
        ``(n_clusters, dim)`` array of cluster means (paper's prototypes).
    assignments:
        Per-point cluster index.
    inertia:
        Sum of squared distances to assigned centers (Eq. 13 objective).
    n_iterations:
        Lloyd iterations actually performed.
    converged:
        True if assignments stabilised before the iteration cap.
    """

    __slots__ = ("centers", "assignments", "inertia", "n_iterations", "converged")

    def __init__(self, centers, assignments, inertia, n_iterations, converged):
        self.centers = centers
        self.assignments = assignments
        self.inertia = inertia
        self.n_iterations = n_iterations
        self.converged = converged

    def __repr__(self) -> str:
        return (
            f"KMeansResult(k={self.centers.shape[0]}, inertia={self.inertia:.4g}, "
            f"iters={self.n_iterations}, converged={self.converged})"
        )


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, computed stably via the expansion trick."""
    p_sq = np.sum(points**2, axis=1)[:, None]
    c_sq = np.sum(centers**2, axis=1)[None, :]
    cross = points @ centers.T
    return np.clip(p_sq + c_sq - 2.0 * cross, 0.0, None)


def kmeans_plusplus_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: iteratively sample centers ∝ squared distance."""
    n = points.shape[0]
    centers = np.empty((n_clusters, points.shape[1]))
    first = int(rng.integers(0, n))
    centers[0] = points[first]
    closest_sq = _pairwise_sq_dists(points, centers[:1]).ravel()
    for i in range(1, n_clusters):
        total = float(closest_sq.sum())
        if total <= 0:
            # All points coincide with chosen centers; fill uniformly.
            centers[i] = points[int(rng.integers(0, n))]
            continue
        probs = closest_sq / total
        chosen = int(rng.choice(n, p=probs))
        centers[i] = points[chosen]
        new_sq = _pairwise_sq_dists(points, centers[i : i + 1]).ravel()
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-7,
    seed=None,
    init_centers: "np.ndarray | None" = None,
) -> KMeansResult:
    """Cluster ``points`` into ``n_clusters`` groups (Lloyd's algorithm).

    Parameters
    ----------
    points:
        ``(n, dim)`` array; ``n`` must be at least 1.
    n_clusters:
        Number of clusters; silently clamped to ``n`` when larger (the
        paper's hierarchy bottoms out when prototypes outnumber points).
    init_centers:
        Optional warm-start centers (``(n_clusters, dim)``). Missing rows
        are filled by k-means++.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(f"points must be 2-D, got shape {arr.shape}")
    n = arr.shape[0]
    if n == 0:
        raise AlignmentError("kmeans needs at least one point")
    if not np.all(np.isfinite(arr)):
        raise AlignmentError("points contain non-finite values")
    n_clusters = check_positive_int(n_clusters, "n_clusters", minimum=1)
    n_clusters = min(n_clusters, n)
    max_iter = check_positive_int(max_iter, "max_iter", minimum=1)
    rng = as_rng(seed)

    if init_centers is not None:
        warm = np.asarray(init_centers, dtype=float)
        if warm.ndim != 2 or warm.shape[1] != arr.shape[1]:
            raise AlignmentError(
                f"init_centers must be (*, {arr.shape[1]}), got {warm.shape}"
            )
        if warm.shape[0] >= n_clusters:
            centers = warm[:n_clusters].copy()
        else:
            centers = np.vstack(
                [warm, kmeans_plusplus_init(arr, n_clusters - warm.shape[0], rng)]
            )
    else:
        centers = kmeans_plusplus_init(arr, n_clusters, rng)

    assignments = np.full(n, -1, dtype=int)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        distances = _pairwise_sq_dists(arr, centers)
        new_assignments = np.argmin(distances, axis=1)

        # Re-seed empty clusters on the points farthest from their centers,
        # so the requested cluster count is honoured.
        counts = np.bincount(new_assignments, minlength=n_clusters)
        empties = np.flatnonzero(counts == 0)
        if empties.size:
            closest = distances[np.arange(n), new_assignments]
            order = np.argsort(-closest)
            for slot, empty in enumerate(empties):
                if slot >= n:
                    break
                victim = int(order[slot])
                new_assignments[victim] = empty
                centers[empty] = arr[victim]
            counts = np.bincount(new_assignments, minlength=n_clusters)

        moved = float("inf")
        new_centers = centers.copy()
        for c in np.flatnonzero(counts > 0):
            new_centers[c] = arr[new_assignments == c].mean(axis=0)
        moved = float(np.max(np.abs(new_centers - centers))) if centers.size else 0.0

        stable = np.array_equal(new_assignments, assignments)
        centers = new_centers
        assignments = new_assignments
        if stable or moved <= tol:
            converged = True
            break

    final_dists = _pairwise_sq_dists(arr, centers)
    inertia = float(final_dists[np.arange(n), assignments].sum())
    return KMeansResult(centers, assignments, inertia, iteration, converged)


def assign_to_centers(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center index for each point (ties go to the lowest index)."""
    arr = np.asarray(points, dtype=float)
    cen = np.asarray(centers, dtype=float)
    if arr.ndim != 2 or cen.ndim != 2 or arr.shape[1] != cen.shape[1]:
        raise AlignmentError(
            f"dimension mismatch: points {arr.shape} vs centers {cen.shape}"
        )
    if cen.shape[0] == 0:
        raise AlignmentError("no centers to assign to")
    return np.argmin(_pairwise_sq_dists(arr, cen), axis=1)
