"""Depth-based (DB) vertex representations (paper Section III-A, refs [26, 34]).

The K-dimensional DB representation of vertex ``v`` collects one entropy per
expansion layer:

    R^K(v) = [ H(G_1(v)), H(G_2(v)), ..., H(G_K(v)) ]

where ``G_j(v)`` is the subgraph induced on all vertices within hop distance
``j`` of ``v``, and ``H`` is an entropy of that subgraph. Following ref. [26]
the default entropy is the Shannon entropy of the subgraph's steady-state
random-walk (degree) distribution; a von Neumann variant is available for
the ablation benchmarks.

The k-dimensional representation used at DB level ``k`` (paper Eq. 12) is
simply the first ``k`` coordinates of ``R^K(v)``, so each graph computes its
K-dimensional matrix once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError, ValidationError
from repro.graphs.graph import Graph
from repro.graphs.ops import max_shortest_path_length
from repro.quantum.entropy import shannon_entropies, von_neumann_entropy
from repro.utils.linalg import safe_xlogx
from repro.utils.validation import check_positive_int

_ENTROPY_KINDS = ("shannon", "von_neumann")


def _subgraph_entropy(adjacency: np.ndarray, kind: str) -> float:
    """Entropy of one expansion subgraph given its adjacency block."""
    degrees = adjacency.sum(axis=1)
    total = float(degrees.sum())
    if kind == "shannon":
        if total <= 0:
            return 0.0
        # Inlined shannon_entropy fast path (this runs once per vertex per
        # expansion layer): degrees are exact non-negative counts summing
        # to `total`, so one normalisation suffices — the historical
        # renormalise-by-the-float-mass second pass divided by 1.0 (to
        # round-off) and cost an extra O(n) sweep per subgraph.
        return float(-np.sum(safe_xlogx(degrees / total)))
    # von Neumann variant: normalised Laplacian spectrum as a pseudo-state.
    n = adjacency.shape[0]
    if n == 0 or total <= 0:
        return 0.0
    laplacian = np.diag(degrees) - adjacency
    trace = float(np.trace(laplacian))
    if trace <= 0:
        return 0.0
    return von_neumann_entropy(laplacian / trace)


def db_representations(
    graph: Graph,
    n_layers: int,
    *,
    entropy: str = "shannon",
) -> np.ndarray:
    """Per-vertex DB representation matrix of shape ``(n, n_layers)``.

    Row ``v`` holds ``[H(G_1(v)), ..., H(G_{n_layers}(v))]``. Layers beyond a
    vertex's eccentricity repeat the entropy of its full reachable set, which
    keeps representations comparable across graphs of different diameters
    (the entropy flow has simply saturated).
    """
    n_layers = check_positive_int(n_layers, "n_layers", minimum=1)
    if entropy not in _ENTROPY_KINDS:
        raise ValidationError(
            f"entropy must be one of {_ENTROPY_KINDS}, got {entropy!r}"
        )
    n = graph.n_vertices
    if n == 0:
        return np.zeros((0, n_layers))
    distances = graph.shortest_path_lengths()
    adjacency = graph.adjacency
    if entropy == "shannon":
        return _shannon_db_representations(adjacency, distances, n_layers)
    output = np.zeros((n, n_layers))
    for v in range(n):
        dist_v = distances[v]
        reachable = dist_v >= 0
        max_depth = int(dist_v[reachable].max()) if reachable.any() else 0
        previous = 0.0
        for layer in range(1, n_layers + 1):
            if layer <= max_depth or layer == 1:
                members = np.flatnonzero(reachable & (dist_v <= layer))
                block = adjacency[np.ix_(members, members)]
                previous = _subgraph_entropy(block, entropy)
            output[v, layer - 1] = previous
    return output


def _shannon_db_representations(
    adjacency: np.ndarray, distances: np.ndarray, n_layers: int
) -> np.ndarray:
    """All-vertex Shannon DB representations via masked matmuls.

    For layer ``l``, row ``v`` of ``mask`` flags the vertices within hop
    distance ``l`` of ``v``; the induced-subgraph degree of member ``u``
    is then ``(mask @ A)[v, u]`` (``A`` symmetric), masked back to the
    member set — no per-vertex subgraph extraction. Non-members carry
    exact zeros, which contribute nothing to the entropy (``0 log 0 = 0``),
    so each row reproduces the per-subgraph computation through one
    batched :func:`repro.quantum.entropy.shannon_entropies` call per
    layer. Saturated layers (beyond a vertex's eccentricity) reproduce
    the previous layer's value because their mask stops changing.
    """
    n = adjacency.shape[0]
    reachable = distances >= 0
    output = np.zeros((n, n_layers))
    for layer in range(1, n_layers + 1):
        mask = (reachable & (distances <= layer)).astype(float)
        degrees = mask * (mask @ adjacency)  # (n, n): member degrees, else 0
        output[:, layer - 1] = shannon_entropies(degrees)
    return output


class DBRepresentationExtractor:
    """Computes DB representations with a dataset-wide layer count ``K``.

    The paper sets ``K`` to the greatest shortest-path length over all
    graphs; for large-diameter datasets that is capped (``max_layers``) to
    keep the cost linear in a small constant — the entropies saturate with
    depth, so high layers carry little extra signal.
    """

    def __init__(
        self,
        *,
        max_layers: int = 10,
        entropy: str = "shannon",
    ) -> None:
        self.max_layers = check_positive_int(max_layers, "max_layers", minimum=1)
        if entropy not in _ENTROPY_KINDS:
            raise ValidationError(
                f"entropy must be one of {_ENTROPY_KINDS}, got {entropy!r}"
            )
        self.entropy = entropy
        self.n_layers_: "int | None" = None

    def fit(self, graphs: "list[Graph]") -> "DBRepresentationExtractor":
        """Choose ``K`` from the collection (paper: max shortest path, capped)."""
        if not graphs:
            raise AlignmentError("need at least one graph to fit")
        diameter_bound = max_shortest_path_length(graphs)
        self.n_layers_ = int(min(diameter_bound, self.max_layers))
        return self

    def transform(self, graph: Graph) -> np.ndarray:
        """DB representation matrix ``(n_vertices, K)`` for one graph."""
        if self.n_layers_ is None:
            raise AlignmentError("extractor must be fitted before transform")
        return db_representations(graph, self.n_layers_, entropy=self.entropy)

    def fit_transform(self, graphs: "list[Graph]") -> "list[np.ndarray]":
        """Fit on the collection and return one matrix per graph."""
        self.fit(graphs)
        return [self.transform(g) for g in graphs]
