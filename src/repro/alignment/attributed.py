"""Label-aware vertex representations for the attributed HAQJSK kernels.

The paper's conclusion names "integrat[ing] the vertex label information
into the kernel computation, resulting [in] new attributed HAQJSK kernels"
as future work. This module implements the natural realisation of that
plan: augment every vertex's depth-based (DB) representation with *label
channels* before prototype clustering, so vertices only align (map to the
same prototype) when both their entropy-flow profile **and** their label
neighbourhood agree.

Two channel families are provided:

* the vertex's own label as a scaled one-hot block (``radius=0``), and
* optionally, normalised label histograms of the vertex's ``r``-hop
  neighbourhoods for ``r = 1..radius`` — a soft Weisfeiler-Lehman flavour
  that lets labels influence alignment at multiple scales, mirroring the
  hierarchy already present in the geometric part of the pipeline.

The channels are *static* columns: the hierarchical aligner slices DB
dimensions ``k = 1..K`` (paper Eq. 12) but keeps every label column in all
slices, because a vertex's label does not saturate or deepen the way the
entropy flow does. Transitivity — and with it the positive-definiteness
argument of the paper's Lemma — is untouched: alignment is still "nearest
common prototype", only in a label-augmented space.

Unlabelled graphs fall back to vertex degrees as labels, the same protocol
the paper's Table II applies to unlabelled datasets.
"""

from __future__ import annotations

import numpy as np

from repro.alignment.depth_based import DBRepresentationExtractor
from repro.errors import AlignmentError
from repro.graphs.graph import Graph
from repro.utils.validation import check_in_range, check_positive_int


class AttributedDBExtractor:
    """DB representations with trailing label channels.

    Parameters
    ----------
    max_layers:
        Cap on the DB layer count ``K`` (as in the plain extractor).
    entropy:
        Expansion-subgraph entropy kind, forwarded to the DB extractor.
    label_weight:
        Scale of the label channels relative to the entropy channels.
        DB entropies live roughly in ``[0, log n]``; the default 1.0 makes
        a label mismatch cost about as much as one full entropy layer,
        which in practice cleanly separates prototypes by label without
        drowning the geometry.
    radius:
        Largest neighbourhood radius for label histogram channels.
        ``radius=0`` uses only the vertex's own label; ``radius=r`` adds
        normalised label histograms of every ``1..r``-hop neighbourhood.

    Attributes (after ``fit``)
    --------------------------
    n_layers_:   the DB layer count ``K`` chosen from the collection.
    n_static_:   number of trailing label columns (kept in every k-slice).
    alphabet_:   sorted label alphabet over the collection.
    """

    def __init__(
        self,
        *,
        max_layers: int = 10,
        entropy: str = "shannon",
        label_weight: float = 1.0,
        radius: int = 0,
    ) -> None:
        self._db = DBRepresentationExtractor(max_layers=max_layers, entropy=entropy)
        self.label_weight = check_in_range(
            label_weight, "label_weight", low=0.0, high=np.inf, low_inclusive=False
        )
        self.radius = check_positive_int(radius + 1, "radius + 1", minimum=1) - 1
        self.n_layers_: "int | None" = None
        self.n_static_: "int | None" = None
        self.alphabet_: "np.ndarray | None" = None

    @property
    def max_layers(self) -> int:
        """Cap on the DB layer count (mirrors the wrapped extractor)."""
        return self._db.max_layers

    @property
    def entropy(self) -> str:
        """Entropy kind of the wrapped DB extractor."""
        return self._db.entropy

    def fit(self, graphs: "list[Graph]") -> "AttributedDBExtractor":
        """Choose ``K`` and collect the label alphabet over the collection."""
        if not graphs:
            raise AlignmentError("need at least one graph to fit")
        self._db.fit(graphs)
        self.n_layers_ = self._db.n_layers_
        alphabet: set = set()
        for graph in graphs:
            alphabet.update(int(v) for v in graph.effective_labels())
        self.alphabet_ = np.asarray(sorted(alphabet), dtype=int)
        self.n_static_ = self.alphabet_.size * (self.radius + 1)
        return self

    def transform(self, graph: Graph) -> np.ndarray:
        """Representation matrix ``(n, K + n_static_)`` for one graph."""
        if self.n_layers_ is None or self.alphabet_ is None:
            raise AlignmentError("extractor must be fitted before transform")
        geometry = self._db.transform(graph)
        return np.hstack([geometry, self._label_channels(graph)])

    def fit_transform(self, graphs: "list[Graph]") -> "list[np.ndarray]":
        """Fit on the collection and return one matrix per graph."""
        self.fit(graphs)
        return [self.transform(g) for g in graphs]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _label_channels(self, graph: Graph) -> np.ndarray:
        """Label one-hots (radius 0) plus r-hop histogram blocks."""
        labels = graph.effective_labels()
        index = {int(label): i for i, label in enumerate(self.alphabet_)}
        n = graph.n_vertices
        alphabet_size = self.alphabet_.size
        blocks = []

        one_hot = np.zeros((n, alphabet_size))
        for v, label in enumerate(labels):
            column = index.get(int(label))
            if column is not None:  # unseen labels (transform-only graphs)
                one_hot[v, column] = 1.0
        blocks.append(one_hot)

        if self.radius > 0:
            distances = graph.shortest_path_lengths()
            for r in range(1, self.radius + 1):
                histogram = np.zeros((n, alphabet_size))
                for v in range(n):
                    members = np.flatnonzero(
                        (distances[v] >= 0) & (distances[v] <= r)
                    )
                    for u in members:
                        column = index.get(int(labels[u]))
                        if column is not None:
                            histogram[v, column] += 1.0
                    total = histogram[v].sum()
                    if total > 0:
                        histogram[v] /= total
                blocks.append(histogram)
        return self.label_weight * np.hstack(blocks)
