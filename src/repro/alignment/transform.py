"""Fixed-size transitive aligned structures (paper Eq. 18-25).

Given a graph's adjacency ``A_p`` (or CTQW density matrix ``rho_p``) and its
level-h correspondence matrix ``C^{h,k}_p``, the aligned structures are

    A^{h,k}_p   = C^{h,k}_pᵀ A_p   C^{h,k}_p        (Eq. 19)
    rho^{h,k}_p = C^{h,k}_pᵀ rho_p C^{h,k}_p        (Eq. 21)

both of size ``|P^{h,k}| x |P^{h,k}|``, shared by every graph in the
collection. Averaging over the DB dimension k gives the *Hierarchical
Transitive Aligned* adjacency/density matrices (Eq. 22-25).

Faithfulness notes (see DESIGN.md):

* Eq. 19/31 literally write ``C^{1,k}ᵀ X C^{h,k}``, which is non-square for
  h > 1 and contradicts the stated output shape; we implement the
  shape-consistent ``C^{h,k}ᵀ X C^{h,k}`` (Eq. 28 agrees).
* ``Cᵀ rho C`` preserves PSD-ness (congruence) but not unit trace, and the
  von Neumann entropy in the QJSD needs a density matrix, so the aligned
  density matrix is renormalised to trace 1 by default (switchable for the
  ablation bench).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.alignment.correspondence import check_correspondence_matrix
from repro.utils.linalg import normalized_trace_one
from repro.utils.validation import check_symmetric_matrix


def aligned_adjacency(
    adjacency: np.ndarray, correspondence: np.ndarray, *, validate: bool = True
) -> np.ndarray:
    """``Cᵀ A C`` — the fixed-size aligned adjacency matrix (Eq. 19).

    The result is a weighted structure over prototypes: entry ``(a, b)``
    counts the edges between vertices mapped to prototypes ``a`` and ``b``
    (diagonal entries aggregate intra-prototype edges and act as vertex
    weights for the CTQW Laplacian, where they cancel).

    ``validate=False`` skips the symmetry/correspondence checks — the
    aligner's inner loop calls this once per (graph, level, dimension)
    with inputs it constructed itself, and the checks cost more than the
    congruence. The arithmetic is identical either way.
    """
    if validate:
        a = check_symmetric_matrix(adjacency, "adjacency")
        c = check_correspondence_matrix(correspondence)
        if c.shape[0] != a.shape[0]:
            raise AlignmentError(
                f"correspondence has {c.shape[0]} rows for a "
                f"{a.shape[0]}-vertex graph"
            )
    else:
        a = np.asarray(adjacency, dtype=float)
        c = np.asarray(correspondence, dtype=float)
    out = c.T @ a @ c
    return (out + out.T) / 2.0


def aligned_density(
    density: np.ndarray,
    correspondence: np.ndarray,
    *,
    renormalize: bool = True,
    validate: bool = True,
) -> np.ndarray:
    """``Cᵀ rho C`` — the fixed-size aligned density matrix (Eq. 21).

    With ``renormalize=True`` (default) the output is scaled to unit trace
    so it remains a valid density matrix for the QJSD. ``validate=False``
    skips input checks for the aligner's inner loop (same arithmetic).
    """
    if validate:
        rho = check_symmetric_matrix(density, "density")
        c = check_correspondence_matrix(correspondence)
        if c.shape[0] != rho.shape[0]:
            raise AlignmentError(
                f"correspondence has {c.shape[0]} rows for a "
                f"{rho.shape[0]}-dim density"
            )
    else:
        rho = np.asarray(density, dtype=float)
        c = np.asarray(correspondence, dtype=float)
    out = c.T @ rho @ c
    out = (out + out.T) / 2.0
    if renormalize:
        out = normalized_trace_one(out, name="aligned density", validate=validate)
    return out


def average_over_k(matrices: "list[np.ndarray]") -> np.ndarray:
    """``(1/K) Σ_k M^{h,k}`` — the Eq. 23/25 average over DB dimensions.

    All matrices must share the fixed prototype size of level h.
    """
    if not matrices:
        raise AlignmentError("need at least one matrix to average")
    first = np.asarray(matrices[0], dtype=float)
    total = np.zeros_like(first)
    for m in matrices:
        arr = np.asarray(m, dtype=float)
        if arr.shape != first.shape:
            raise AlignmentError(
                f"cannot average matrices of shapes {first.shape} and {arr.shape}"
            )
        total += arr
    return total / len(matrices)


class AlignedGraphStructures:
    """The per-graph output of the hierarchical alignment pipeline.

    Attributes
    ----------
    adjacency_by_level:
        ``adjacency_by_level[h-1]`` is the Eq. 23 hierarchical transitive
        aligned adjacency matrix ``Ā^h_p`` (fixed size ``M_h x M_h``).
    density_by_level:
        ``density_by_level[h-1]`` is the Eq. 25 hierarchical transitive
        aligned density matrix ``ρ̄^h_p``.
    """

    __slots__ = ("adjacency_by_level", "density_by_level")

    def __init__(self, adjacency_by_level, density_by_level):
        if len(adjacency_by_level) != len(density_by_level):
            raise AlignmentError(
                "adjacency and density level lists must have equal length"
            )
        self.adjacency_by_level = adjacency_by_level
        self.density_by_level = density_by_level

    @property
    def n_levels(self) -> int:
        """Number of hierarchy levels H."""
        return len(self.adjacency_by_level)

    def level_adjacency(self, level: int) -> np.ndarray:
        """``Ā^h_p`` for 1-based ``level``."""
        self._check_level(level)
        return self.adjacency_by_level[level - 1]

    def level_density(self, level: int) -> np.ndarray:
        """``ρ̄^h_p`` for 1-based ``level``."""
        self._check_level(level)
        return self.density_by_level[level - 1]

    def _check_level(self, level: int) -> None:
        if not (1 <= level <= self.n_levels):
            raise AlignmentError(f"level must be in 1..{self.n_levels}, got {level}")
