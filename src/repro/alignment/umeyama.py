"""Umeyama-style spectral vertex matching (paper Section II-D, ref. [38]).

The *aligned* QJSK baseline ``k_QJSA`` permutes the smaller graph's density
matrix to maximise agreement before the QJSD. Following Umeyama (1988), the
correspondence is recovered from the eigenvector matrices of the two
operators: maximise ``tr(Qᵀ |U_p||U_q|ᵀ)`` over permutation-like matrices
``Q``, solved exactly as a linear assignment problem.

This matching is pairwise and therefore *not transitive* — exactly the
defect (paper Section II-D remarks) that the hierarchical prototype
alignment of HAQJSK removes.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.errors import AlignmentError
from repro.utils.linalg import eigh_sorted
from repro.utils.validation import check_symmetric_matrix


def umeyama_similarity(matrix_p: np.ndarray, matrix_q: np.ndarray) -> np.ndarray:
    """The Umeyama similarity ``|U_p| |U_q|ᵀ`` between two operators.

    Both inputs must be symmetric; the smaller one is zero-padded so the
    eigenvector matrices share a common dimension.
    """
    p = check_symmetric_matrix(matrix_p, "matrix_p")
    q = check_symmetric_matrix(matrix_q, "matrix_q")
    size = max(p.shape[0], q.shape[0])
    p_pad = _pad(p, size)
    q_pad = _pad(q, size)
    _, u_p = eigh_sorted(p_pad)
    _, u_q = eigh_sorted(q_pad)
    return np.abs(u_p) @ np.abs(u_q).T


def umeyama_correspondence(
    matrix_p: np.ndarray, matrix_q: np.ndarray
) -> np.ndarray:
    """Permutation matrix ``Q`` aligning q's indices onto p's.

    ``Q[i, j] = 1`` means index ``j`` of (padded) ``matrix_q`` is matched to
    index ``i`` of (padded) ``matrix_p``. Solved optimally with the
    Hungarian algorithm on the Umeyama similarity.
    """
    similarity = umeyama_similarity(matrix_p, matrix_q)
    rows, cols = linear_sum_assignment(-similarity)
    size = similarity.shape[0]
    q_matrix = np.zeros((size, size))
    q_matrix[rows, cols] = 1.0
    return q_matrix


def permute_with(matrix: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Apply ``Q M Qᵀ`` (zero-padding ``M`` up to Q's size first)."""
    q = np.asarray(permutation, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise AlignmentError(f"permutation must be square, got {q.shape}")
    m = check_symmetric_matrix(matrix, "matrix")
    padded = _pad(m, q.shape[0])
    return q @ padded @ q.T


def _pad(matrix: np.ndarray, size: int) -> np.ndarray:
    n = matrix.shape[0]
    if n == size:
        return matrix
    if n > size:
        raise AlignmentError(f"cannot pad {n}x{n} down to {size}x{size}")
    out = np.zeros((size, size))
    out[:n, :n] = matrix
    return out
