"""Hierarchical prototype representations (paper Eq. 14/16, Fig. 2).

Level-1 prototypes are κ-means centers over the vertex representations of
*all* graphs in the collection; level-(h+1) prototypes are κ-means centers
over the level-h prototypes. Aligning every graph to this one shared
hierarchy is what makes the correspondence *transitive* (two vertices
aligned to the same prototype are aligned to each other), the property the
paper's positive-definiteness proof rests on.

Under-specified in the paper (see DESIGN.md): the prototype counts for
levels ``h >= 2``. Fig. 2 shows a strictly shrinking hierarchy; we halve the
count per level by default (``shrink_factor = 0.5``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.alignment.kmeans import assign_to_centers, kmeans
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_in_range, check_positive_int


def level_sizes(
    n_prototypes: int, n_levels: int, *, shrink_factor: float = 0.5, minimum: int = 2
) -> list:
    """Prototype counts per level: ``[M, M*s, M*s^2, ...]`` floored at ``minimum``."""
    n_prototypes = check_positive_int(n_prototypes, "n_prototypes", minimum=1)
    n_levels = check_positive_int(n_levels, "n_levels", minimum=1)
    shrink_factor = check_in_range(
        shrink_factor, "shrink_factor", low=0.0, high=1.0, low_inclusive=False
    )
    sizes = []
    current = float(n_prototypes)
    for _ in range(n_levels):
        sizes.append(max(int(round(current)), min(minimum, n_prototypes)))
        current *= shrink_factor
    return sizes


class PrototypeHierarchy:
    """A fitted hierarchy of prototype representations for one dimension k.

    Attributes
    ----------
    centers:
        ``centers[h-1]`` is the ``(M_h, dim)`` array of level-h prototypes.
    memberships:
        ``memberships[h-1]`` maps a level-h prototype index to its parent
        level-(h+1) prototype index (length ``M_h``); the last level has no
        entry. Chaining these maps is what turns a level-1 assignment into
        the level-h correspondence of paper Eq. (17).
    """

    def __init__(self, centers: "list[np.ndarray]", memberships: "list[np.ndarray]"):
        if len(memberships) != max(len(centers) - 1, 0):
            raise AlignmentError(
                f"expected {max(len(centers) - 1, 0)} membership maps, got {len(memberships)}"
            )
        self.centers = centers
        self.memberships = memberships

    @property
    def n_levels(self) -> int:
        """Number of hierarchy levels H."""
        return len(self.centers)

    def size(self, level: int) -> int:
        """Number of prototypes ``|P^{h,k}|`` at 1-based ``level``."""
        self._check_level(level)
        return self.centers[level - 1].shape[0]

    def assign_level1(self, points: np.ndarray) -> np.ndarray:
        """Nearest level-1 prototype per point (paper Eq. 15 assignment)."""
        return assign_to_centers(points, self.centers[0])

    def lift_assignment(self, level1_assignment: np.ndarray, level: int) -> np.ndarray:
        """Map level-1 assignments up the hierarchy to ``level``."""
        self._check_level(level)
        assignment = np.asarray(level1_assignment, dtype=int)
        for h in range(1, level):
            assignment = self.memberships[h - 1][assignment]
        return assignment

    def assign(self, points: np.ndarray, level: int) -> np.ndarray:
        """Level-``level`` prototype index per point (via the chain)."""
        return self.lift_assignment(self.assign_level1(points), level)

    def _check_level(self, level: int) -> None:
        if not (1 <= level <= self.n_levels):
            raise AlignmentError(
                f"level must be in 1..{self.n_levels}, got {level}"
            )


def fit_prototype_hierarchy(
    points: np.ndarray,
    *,
    n_prototypes: int,
    n_levels: int,
    shrink_factor: float = 0.5,
    seed=None,
    init_centers: "np.ndarray | None" = None,
    kmeans_max_iter: int = 100,
) -> PrototypeHierarchy:
    """Fit the full hierarchy on the pooled vertex representations.

    ``init_centers`` warm-starts the level-1 κ-means; the HAQJSK transformer
    passes the level-1 centers fitted at dimension ``k`` when fitting
    dimension ``k+1``, keeping prototype indexings consistent across the
    Eq. (23)/(25) average over k (see DESIGN.md).
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise AlignmentError(f"points must be a non-empty 2-D array, got {arr.shape}")
    rng = as_rng(seed)
    sizes = level_sizes(n_prototypes, n_levels, shrink_factor=shrink_factor)

    centers: list = []
    memberships: list = []
    current_points = arr
    warm = init_centers
    for level, size in enumerate(sizes, start=1):
        result = kmeans(
            current_points,
            size,
            seed=spawn_seed(rng),
            init_centers=warm,
            max_iter=kmeans_max_iter,
        )
        centers.append(result.centers)
        if level > 1:
            # The points clustered at this level *are* the previous level's
            # prototypes, so the assignment is exactly the membership map.
            memberships.append(result.assignments.astype(int))
        current_points = result.centers
        warm = None
    return PrototypeHierarchy(centers, memberships)
