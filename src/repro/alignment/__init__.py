"""Alignment substrate: DB representations, prototypes, correspondences."""

from repro.alignment.correspondence import (
    aligned_vertex_pairs,
    check_correspondence_matrix,
    correspondence_is_transitive,
    correspondence_matrices,
    one_hot,
)
from repro.alignment.attributed import AttributedDBExtractor
from repro.alignment.depth_based import (
    DBRepresentationExtractor,
    db_representations,
)
from repro.alignment.kmeans import (
    KMeansResult,
    assign_to_centers,
    kmeans,
    kmeans_plusplus_init,
)
from repro.alignment.prototypes import (
    PrototypeHierarchy,
    fit_prototype_hierarchy,
    level_sizes,
)
from repro.alignment.transform import (
    AlignedGraphStructures,
    aligned_adjacency,
    aligned_density,
    average_over_k,
)
from repro.alignment.umeyama import (
    permute_with,
    umeyama_correspondence,
    umeyama_similarity,
)

__all__ = [
    "AlignedGraphStructures",
    "AttributedDBExtractor",
    "DBRepresentationExtractor",
    "KMeansResult",
    "PrototypeHierarchy",
    "aligned_adjacency",
    "aligned_density",
    "aligned_vertex_pairs",
    "assign_to_centers",
    "average_over_k",
    "check_correspondence_matrix",
    "correspondence_is_transitive",
    "correspondence_matrices",
    "db_representations",
    "fit_prototype_hierarchy",
    "kmeans",
    "kmeans_plusplus_init",
    "level_sizes",
    "one_hot",
    "permute_with",
    "umeyama_correspondence",
    "umeyama_similarity",
]
