"""Vertex-to-prototype correspondence matrices (paper Eq. 15/17).

``C^{h,k}_p`` is the ``{0,1}^{|Vp| x |P^{h,k}|}`` matrix whose ``(i, j)``
entry is 1 iff vertex ``i`` of graph ``p`` is aligned to the ``j``-th
level-h prototype. Because all graphs align to one shared prototype
hierarchy, the induced vertex correspondence is *transitive* — verified
empirically by :func:`correspondence_is_transitive` and in the Table I
benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlignmentError
from repro.alignment.prototypes import PrototypeHierarchy


def one_hot(assignment: np.ndarray, n_columns: int) -> np.ndarray:
    """Turn an index vector into a ``{0,1}`` assignment matrix."""
    idx = np.asarray(assignment, dtype=int)
    if idx.ndim != 1:
        raise AlignmentError(f"assignment must be 1-D, got shape {idx.shape}")
    if idx.size and (idx.min() < 0 or idx.max() >= n_columns):
        raise AlignmentError(
            f"assignment indices out of range for {n_columns} columns"
        )
    matrix = np.zeros((idx.size, n_columns))
    matrix[np.arange(idx.size), idx] = 1.0
    return matrix


def correspondence_matrices(
    vertex_points: np.ndarray, hierarchy: PrototypeHierarchy
) -> "list[np.ndarray]":
    """The family ``{C^{1,k}, ..., C^{H,k}}`` for one graph (Eq. 17).

    ``vertex_points`` is the graph's ``(n, k)`` DB-representation matrix;
    the returned list holds one one-hot matrix per hierarchy level.
    """
    points = np.asarray(vertex_points, dtype=float)
    if points.ndim != 2:
        raise AlignmentError(f"vertex_points must be 2-D, got {points.shape}")
    level1 = hierarchy.assign_level1(points)
    matrices = []
    for level in range(1, hierarchy.n_levels + 1):
        lifted = hierarchy.lift_assignment(level1, level)
        matrices.append(one_hot(lifted, hierarchy.size(level)))
    return matrices


def check_correspondence_matrix(matrix: np.ndarray, *, name: str = "C") -> np.ndarray:
    """Validate the Eq. 15 structure: binary with exactly one 1 per row."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise AlignmentError(f"{name} must be 2-D, got shape {arr.shape}")
    if not np.all((arr == 0.0) | (arr == 1.0)):
        raise AlignmentError(f"{name} must be binary")
    row_sums = arr.sum(axis=1)
    if arr.shape[0] and not np.all(row_sums == 1.0):
        raise AlignmentError(f"{name} must have exactly one 1 per row")
    return arr


def aligned_vertex_pairs(
    c_p: np.ndarray, c_q: np.ndarray
) -> "list[tuple]":
    """Pairs ``(i, j)`` of vertices aligned through a shared prototype.

    Vertex ``i`` of graph p and vertex ``j`` of graph q are transitively
    aligned iff they map to the same prototype column.
    """
    cp = check_correspondence_matrix(c_p, name="c_p")
    cq = check_correspondence_matrix(c_q, name="c_q")
    if cp.shape[1] != cq.shape[1]:
        raise AlignmentError(
            f"correspondences target different prototype sets "
            f"({cp.shape[1]} vs {cq.shape[1]})"
        )
    pair_matrix = cp @ cq.T  # (i, j) entry 1 iff same prototype
    return [(int(i), int(j)) for i, j in zip(*np.nonzero(pair_matrix))]


def correspondence_is_transitive(
    matrices: "list[np.ndarray]",
) -> bool:
    """Check alignment transitivity across a collection of graphs.

    For one-hot correspondences ``C_p`` the relation "aligned to the same
    prototype" is induced by a function vertex -> prototype, hence an
    equivalence relation, hence transitive. This verifier checks the claim
    directly on the pairwise alignment matrices: for all graphs p, q, r and
    vertices a in p, b in q, c in r, aligned(a, b) and aligned(b, c) must
    imply aligned(a, c).
    """
    mats = [check_correspondence_matrix(m) for m in matrices]
    for p, cp in enumerate(mats):
        for q, cq in enumerate(mats):
            for r, cr in enumerate(mats):
                pq = cp @ cq.T
                qr = cq @ cr.T
                pr = cp @ cr.T
                # aligned(a, b) & aligned(b, c) for some b  =>  (pq @ qr) > 0
                implied = (pq @ qr) > 0
                if np.any(implied & (pr == 0)):
                    return False
    return True
