"""A sqlite-backed priority job queue with a crash-shaped lifecycle.

One ``jobs`` table holds every job ever submitted; the queue is the set
of ``pending`` rows. The lifecycle mirrors the lease protocol of
:mod:`repro.store.claims`, translated from store records to sqlite rows:

* :meth:`JobQueue.submit` inserts a ``pending`` row (idempotent under a
  caller-chosen ``key`` — resubmitting an existing key returns the
  existing job, so a restarted scheduler never duplicates work);
* :meth:`JobQueue.claim` atomically flips the highest-priority runnable
  row to ``running`` and stamps a lease deadline for the claiming
  worker — exactly one claimant wins a job (``BEGIN IMMEDIATE``
  serialises racing processes on the database file);
* :meth:`JobQueue.heartbeat` advances a running job's lease deadline;
  :meth:`JobQueue.requeue_expired` returns jobs whose worker missed its
  deadline (SIGKILL, OOM) to ``pending`` — the claim/TTL semantics of
  :class:`~repro.store.claims.TileClaims`, without burning a retry,
  because a dead worker says nothing about whether the job can succeed;
* :meth:`JobQueue.fail` retries with exponential backoff while attempts
  remain, else parks the job as ``failed`` with its stored error;
  :meth:`JobQueue.complete` / :meth:`JobQueue.cancel` finish the
  terminal states.

Durability comes from sqlite itself: every transition is one committed
transaction, so a process killed at any point leaves either the old row
or the new row, never a torn one.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import CampaignError

#: Every status a job row can hold.
JOB_STATUSES = ("pending", "running", "done", "failed", "cancelled")

#: Statuses a job never leaves on its own.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

#: Default seconds a running job's lease stays valid without a heartbeat.
DEFAULT_LEASE_TTL = 60.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    kind TEXT NOT NULL,
    key TEXT,
    payload TEXT NOT NULL DEFAULT '{}',
    priority INTEGER NOT NULL DEFAULT 0,
    status TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    max_retries INTEGER NOT NULL DEFAULT 0,
    backoff REAL NOT NULL DEFAULT 0.0,
    not_before REAL NOT NULL DEFAULT 0.0,
    worker TEXT,
    lease_ttl REAL NOT NULL DEFAULT 60.0,
    lease_deadline REAL,
    result TEXT,
    error TEXT,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
CREATE UNIQUE INDEX IF NOT EXISTS jobs_key
    ON jobs(key) WHERE key IS NOT NULL;
CREATE INDEX IF NOT EXISTS jobs_claimable
    ON jobs(status, priority, id);
"""


@dataclass(frozen=True)
class QueuedJob:
    """One immutable snapshot of a job row."""

    id: int
    kind: str
    key: "str | None"
    payload: dict
    priority: int
    status: str
    attempts: int
    max_retries: int
    backoff: float
    not_before: float
    worker: "str | None"
    lease_ttl: float
    lease_deadline: "float | None"
    result: "dict | None"
    error: "str | None"
    created_at: float
    updated_at: float

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "QueuedJob":
        return cls(
            id=int(row["id"]),
            kind=row["kind"],
            key=row["key"],
            payload=json.loads(row["payload"]),
            priority=int(row["priority"]),
            status=row["status"],
            attempts=int(row["attempts"]),
            max_retries=int(row["max_retries"]),
            backoff=float(row["backoff"]),
            not_before=float(row["not_before"]),
            worker=row["worker"],
            lease_ttl=float(row["lease_ttl"]),
            lease_deadline=(
                None if row["lease_deadline"] is None else float(row["lease_deadline"])
            ),
            result=None if row["result"] is None else json.loads(row["result"]),
            error=row["error"],
            created_at=float(row["created_at"]),
            updated_at=float(row["updated_at"]),
        )


class JobQueue:
    """A persistent priority queue over one sqlite database.

    Parameters
    ----------
    path:
        Database file (created with its parent directory if missing), or
        ``":memory:"`` for an ephemeral in-process queue. Several
        :class:`JobQueue` *and* :class:`~repro.campaign.db.CampaignDB`
        instances — across processes — may share one file; sqlite's
        locking serialises them.
    clock:
        Time source (``time.time``); injectable so retry backoff and
        lease expiry are testable in virtual time.
    """

    def __init__(self, path: str, *, clock=time.time) -> None:
        if not str(path).strip():
            raise CampaignError("JobQueue needs a database path")
        self.path = str(path)
        self.clock = clock
        self._lock = threading.Lock()
        if self.path != ":memory:":
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            if self.path != ":memory:":
                # WAL keeps readers (status CLIs, peer workers) unblocked
                # while a claim transaction writes.
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------ #
    # Transaction discipline (REPRO005): every statement on the shared
    # connection runs inside one of these two helpers.
    # ------------------------------------------------------------------ #

    @contextmanager
    def _txn(self):
        """One committed write transaction on the shared connection.

        ``BEGIN IMMEDIATE`` takes the database write lock up front so
        racing processes serialise at entry instead of deadlocking
        mid-transaction; commit-or-rollback on every exit path means a
        process killed anywhere inside leaves whole rows, never torn
        ones.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self._conn
            except BaseException:
                if self._conn.in_transaction:
                    self._conn.execute("ROLLBACK")
                raise
            else:
                self._conn.execute("COMMIT")

    @contextmanager
    def _read(self):
        """The shared connection for reads (thread lock, no transaction)."""
        with self._lock:
            yield self._conn

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    def submit(
        self,
        kind: str,
        payload: "dict | None" = None,
        *,
        key: "str | None" = None,
        priority: int = 0,
        max_retries: int = 0,
        backoff: float = 1.0,
        lease_ttl: float = DEFAULT_LEASE_TTL,
    ) -> QueuedJob:
        """Enqueue a job; returns the (possibly pre-existing) row.

        ``key`` is the job's dedup identity: submitting a key that is
        already pending/running/done returns that job untouched, while a
        ``failed`` or ``cancelled`` row under the key is *revived* —
        reset to pending with a fresh retry budget. That makes
        "re-submit everything" the correct, idempotent way to resume a
        half-finished schedule.
        """
        if float(lease_ttl) <= 0:
            raise CampaignError(f"lease_ttl must be > 0 seconds, got {lease_ttl!r}")
        now = self.clock()
        encoded = json.dumps(payload or {}, sort_keys=True)
        with self._txn() as conn:
            job_id = None
            if key is not None:
                row = conn.execute(
                    "SELECT * FROM jobs WHERE key = ?", (key,)
                ).fetchone()
                if row is not None:
                    if row["status"] in ("failed", "cancelled"):
                        conn.execute(
                            "UPDATE jobs SET status='pending', attempts=0, "
                            "worker=NULL, lease_deadline=NULL, error=NULL, "
                            "not_before=0.0, payload=?, priority=?, "
                            "max_retries=?, backoff=?, lease_ttl=?, "
                            "updated_at=? WHERE id = ?",
                            (encoded, int(priority), int(max_retries),
                             float(backoff), float(lease_ttl), now, row["id"]),
                        )
                    job_id = int(row["id"])
            if job_id is None:
                cursor = conn.execute(
                    "INSERT INTO jobs (kind, key, payload, priority, "
                    "max_retries, backoff, lease_ttl, created_at, updated_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (str(kind), key, encoded, int(priority), int(max_retries),
                     float(backoff), float(lease_ttl), now, now),
                )
                job_id = int(cursor.lastrowid)
        return self.get(job_id)

    def cancel(self, job_id: int) -> bool:
        """Cancel a pending/running job; True when the row transitioned.

        A running job's worker only notices at its next heartbeat (the
        heartbeat returns ``False``); its in-flight work is discarded by
        the status, not interrupted.
        """
        now = self.clock()
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET status='cancelled', updated_at=?, "
                "lease_deadline=NULL WHERE id=? AND status IN "
                "('pending', 'running')",
                (now, int(job_id)),
            )
        return cursor.rowcount > 0

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #

    def claim(
        self, worker: str, *, kinds: "tuple | list | None" = None
    ) -> "QueuedJob | None":
        """Atomically take the best runnable job for ``worker``.

        Order: highest ``priority`` first, then FIFO by id. A pending
        job still inside its retry backoff window (``not_before`` in the
        future) is invisible. Returns ``None`` when nothing is runnable.
        """
        now = self.clock()
        query = (
            "SELECT * FROM jobs WHERE status='pending' AND not_before <= ?"
        )
        params: list = [now]
        if kinds:
            marks = ", ".join("?" for _ in kinds)
            query += f" AND kind IN ({marks})"
            params.extend(str(kind) for kind in kinds)
        query += " ORDER BY priority DESC, id ASC LIMIT 1"
        with self._txn() as conn:
            row = conn.execute(query, params).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET status='running', worker=?, "
                "attempts=attempts+1, lease_deadline=?, updated_at=? "
                "WHERE id=?",
                (str(worker), now + float(row["lease_ttl"]), now, row["id"]),
            )
        return self.get(int(row["id"]))

    def heartbeat(self, job_id: int, worker: str) -> bool:
        """Advance a running job's lease; False when the job was lost
        (cancelled, requeued after an expiry, or claimed by another
        worker) — the signal for the worker to abandon it."""
        now = self.clock()
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_deadline = ? + lease_ttl, updated_at=? "
                "WHERE id=? AND status='running' AND worker=?",
                (now, now, int(job_id), str(worker)),
            )
        return cursor.rowcount > 0

    def complete(self, job_id: int, result: "dict | None" = None) -> QueuedJob:
        """Mark a job done, storing its JSON result."""
        now = self.clock()
        with self._txn() as conn:
            conn.execute(
                "UPDATE jobs SET status='done', result=?, error=NULL, "
                "lease_deadline=NULL, updated_at=? WHERE id=?",
                (json.dumps(result, sort_keys=True) if result is not None else None,
                 now, int(job_id)),
            )
        return self.get(int(job_id))

    def fail(self, job_id: int, error: str) -> QueuedJob:
        """Record a failed attempt: retry with backoff, or park as failed.

        While ``attempts <= max_retries`` the job returns to ``pending``
        with ``not_before = now + backoff * 2**(attempts-1)`` (exponential
        backoff, first retry after one full ``backoff``); past the budget
        it lands in ``failed`` with ``error`` stored for triage.
        """
        now = self.clock()
        with self._txn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id=?", (int(job_id),)
            ).fetchone()
            if row is None:
                raise CampaignError(f"no job {job_id!r} in {self.path!r}")
            if int(row["attempts"]) <= int(row["max_retries"]):
                delay = float(row["backoff"]) * (
                    2.0 ** max(int(row["attempts"]) - 1, 0)
                )
                conn.execute(
                    "UPDATE jobs SET status='pending', worker=NULL, "
                    "lease_deadline=NULL, not_before=?, error=?, "
                    "updated_at=? WHERE id=?",
                    (now + delay, str(error), now, int(job_id)),
                )
            else:
                conn.execute(
                    "UPDATE jobs SET status='failed', worker=NULL, "
                    "lease_deadline=NULL, error=?, updated_at=? WHERE id=?",
                    (str(error), now, int(job_id)),
                )
        return self.get(int(job_id))

    def requeue(self, job_id: int) -> "QueuedJob | None":
        """Force one running job back to ``pending`` without burning a
        retry — for a caller that *knows* the lease is stale (e.g. the
        campaign runner reconciling after a crash) and should not wait
        out the TTL. Returns the requeued job, or ``None`` when the row
        was not running."""
        now = self.clock()
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET status='pending', worker=NULL, "
                "lease_deadline=NULL, attempts=attempts-1, updated_at=? "
                "WHERE id=? AND status='running'",
                (now, int(job_id)),
            )
        return self.get(int(job_id)) if cursor.rowcount else None

    def requeue_expired(self) -> "list[QueuedJob]":
        """Return every running job whose lease lapsed to ``pending``.

        The sqlite translation of the tile-lease steal: a worker that
        died mid-job stops heartbeating, its lease deadline passes, and
        the job becomes claimable again. Expiry does *not* consume a
        retry — the attempt counter already advanced at claim time, but
        ``max_retries`` budgets failures, and a dead worker is not
        evidence the job itself fails (``fail`` handles that).
        """
        now = self.clock()
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT id FROM jobs WHERE status='running' AND "
                "lease_deadline IS NOT NULL AND lease_deadline < ?",
                (now,),
            ).fetchall()
            ids = [int(row["id"]) for row in rows]
            for job_id in ids:
                conn.execute(
                    "UPDATE jobs SET status='pending', worker=NULL, "
                    "lease_deadline=NULL, attempts=attempts-1, "
                    "updated_at=? WHERE id=?",
                    (now, job_id),
                )
        return [self.get(job_id) for job_id in ids]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def get(self, job_id: int) -> QueuedJob:
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id=?", (int(job_id),)
            ).fetchone()
        if row is None:
            raise CampaignError(f"no job {job_id!r} in {self.path!r}")
        return QueuedJob.from_row(row)

    def wait(
        self, job_id: int, *, timeout: float = 60.0, poll: float = 0.05
    ) -> QueuedJob:
        """Block until the job reaches a terminal state; return it.

        Polling, not notification — sqlite has no wakeups, and the
        waiters (serve-layer tests, CLI train-and-wait flows) are not
        latency-critical. Raises :class:`CampaignError` on timeout with
        the job's last observed status, so a hung worker is diagnosable.
        """
        deadline = time.monotonic() + float(timeout)
        while True:
            job = self.get(job_id)
            if job.terminal:
                return job
            if time.monotonic() >= deadline:
                raise CampaignError(
                    f"job {job_id} still {job.status!r} after "
                    f"{timeout:.1f}s (worker {job.worker!r})"
                )
            time.sleep(poll)

    def by_key(self, key: str) -> "QueuedJob | None":
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE key=?", (str(key),)
            ).fetchone()
        return None if row is None else QueuedJob.from_row(row)

    def list_jobs(
        self, *, status: "str | None" = None, kind: "str | None" = None
    ) -> "list[QueuedJob]":
        query, params = "SELECT * FROM jobs", []
        clauses = []
        if status is not None:
            if status not in JOB_STATUSES:
                raise CampaignError(
                    f"unknown job status {status!r}; expected one of "
                    f"{', '.join(JOB_STATUSES)}"
                )
            clauses.append("status=?")
            params.append(status)
        if kind is not None:
            clauses.append("kind=?")
            params.append(str(kind))
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY priority DESC, id ASC"
        with self._read() as conn:
            rows = conn.execute(query, params).fetchall()
        return [QueuedJob.from_row(row) for row in rows]

    def counts(self) -> "dict[str, int]":
        """``{status: n}`` over every status (zero-filled)."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in JOB_STATUSES}
        for row in rows:
            counts[row["status"]] = int(row["n"])
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue(path={self.path!r})"
