"""Durable job scheduling: a sqlite-persisted priority queue.

The queue is the scheduling substrate shared by the campaign runner
(:mod:`repro.campaign`) and, per the roadmap, the future HTTP serving
layer: long-running work (Gram computations, training, experiment cells)
is submitted as :class:`QueuedJob` records that survive process death —
statuses, retries with backoff, cancellation and lease-style requeue all
live in one crash-safe sqlite file.
"""

from repro.jobs.queue import (
    JOB_STATUSES,
    JobQueue,
    QueuedJob,
)

__all__ = [
    "JOB_STATUSES",
    "JobQueue",
    "QueuedJob",
]
