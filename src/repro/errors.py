"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to discriminate the concrete cause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or type)."""


class GraphError(ReproError):
    """A graph structure is malformed or an operation on it is undefined."""


class DatasetError(ReproError):
    """A dataset could not be constructed, parsed, or validated."""


class QuantumError(ReproError):
    """A quantum-information computation received an invalid operator/state."""


class NotDensityMatrixError(QuantumError):
    """A matrix expected to be a density matrix is not PSD / trace-one."""


class AlignmentError(ReproError):
    """Prototype construction or vertex correspondence failed."""


class KernelError(ReproError):
    """A graph-kernel computation failed or was configured inconsistently."""


class KernelSpecError(KernelError, ValueError):
    """A declarative kernel specification names an unregistered kernel or
    passes parameters the registered signature does not accept."""


class BackendError(KernelError):
    """An array backend is unknown, unavailable, or misconfigured.

    Raised by :func:`repro.backend.resolve_backend` both for typos (the
    message lists the registered names) and for optional backends whose
    library is not importable in this environment — callers never see a
    raw :class:`ImportError` from backend selection.
    """


class NotFittedError(ReproError):
    """A model or transformer was used before ``fit`` was called."""


class ServingError(ReproError):
    """A model bundle is missing, corrupt, or inconsistent with its data."""


class ProtocolError(ServingError):
    """A serving request body failed to parse or validate (HTTP 400).

    Raised by :mod:`repro.serve.protocol` while decoding wire-format
    graphs and request payloads — the message names the offending field,
    and the HTTP layer maps the whole class to a 400 response.
    """


class ServerBusyError(ServingError):
    """The serving queue passed its high-water mark (HTTP 503).

    Backpressure, not failure: the micro-batcher refuses new work instead
    of queueing unboundedly, and carries ``retry_after`` seconds the HTTP
    layer surfaces as a ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class ServeTimeoutError(ServingError):
    """A serving request waited past its deadline (HTTP 504)."""


class DistributedError(ReproError):
    """A distributed tile job is misconfigured, incomplete, or timed out."""


class CampaignError(ReproError):
    """A campaign DAG, its job queue, or one of its nodes is invalid,
    failed, or inconsistent with its recorded state."""


class ConvergenceWarning(UserWarning):
    """An iterative solver stopped at its iteration cap before converging."""
