"""repro — a full reproduction of the HAQJSK graph-kernel paper.

HAQJSK: Hierarchical-Aligned Quantum Jensen-Shannon Kernels for Graph
Classification (Bai, Cui, Wang, Li, Hancock; ICDE 2025 extended abstract /
arXiv:2211.02904).

Top-level re-exports cover the most common entry points; see the
subpackages for the full API:

* :mod:`repro.graphs`    — graph substrate (Graph, generators, IO)
* :mod:`repro.datasets`  — the 12 benchmark datasets of Table II
* :mod:`repro.quantum`   — CTQW, density matrices, entropies, QJSD
* :mod:`repro.alignment` — DB representations, prototypes, correspondences
* :mod:`repro.kernels`   — HAQJSK(A/D) plus every baseline of Table III
* :mod:`repro.engine`    — pluggable Gram backends (serial/batched/process)
* :mod:`repro.store`     — content-addressed artifacts, incremental Grams
* :mod:`repro.ml`        — C-SVM (SMO), multiclass, cross-validation
* :mod:`repro.gnn`       — numpy autograd + the deep baselines of Table V
* :mod:`repro.experiments` — regenerate each paper table/figure
"""

from repro.graphs.graph import Graph

__version__ = "1.0.0"

__all__ = ["Graph", "__version__"]
