"""repro — a full reproduction of the HAQJSK graph-kernel paper.

HAQJSK: Hierarchical-Aligned Quantum Jensen-Shannon Kernels for Graph
Classification (Bai, Cui, Wang, Li, Hancock; ICDE 2025 extended abstract /
arXiv:2211.02904).

The documented way in is the unified public API::

    import repro

    session = repro.Session(repro.ExecutionContext.from_env())
    spec = repro.KernelSpec("HAQJSK(D)", n_prototypes=32)
    result = session.cross_validate(spec, dataset)

* :class:`repro.KernelSpec` / :func:`repro.make` — declarative,
  registry-validated kernel construction (:mod:`repro.kernels.registry`)
* :class:`repro.ExecutionContext` — engine, store, sinks, tile and
  normalisation policy as one frozen value (``ctx=`` everywhere)
* :class:`repro.Session` — ``gram`` / ``cross_validate`` / ``train`` /
  ``predict`` over one context

The subpackages hold the full layer APIs:

* :mod:`repro.graphs`    — graph substrate (Graph, generators, IO)
* :mod:`repro.datasets`  — the 12 benchmark datasets of Table II
* :mod:`repro.quantum`   — CTQW, density matrices, entropies, QJSD
* :mod:`repro.alignment` — DB representations, prototypes, correspondences
* :mod:`repro.kernels`   — HAQJSK(A/D) plus every baseline of Table III
* :mod:`repro.engine`    — pluggable Gram backends (serial/batched/process)
* :mod:`repro.store`     — content-addressed artifacts, incremental Grams
* :mod:`repro.ml`        — C-SVM (SMO), multiclass, cross-validation
* :mod:`repro.serve`     — model bundles + the prediction service
* :mod:`repro.gnn`       — numpy autograd + the deep baselines of Table V
* :mod:`repro.experiments` — regenerate each paper table/figure
"""

from repro.api.context import ExecutionContext
from repro.api.session import Session
from repro.graphs.graph import Graph
from repro.kernels.registry import KernelSpec, make

__version__ = "1.1.0"

__all__ = [
    "ExecutionContext",
    "Graph",
    "KernelSpec",
    "Session",
    "__version__",
    "make",
]
