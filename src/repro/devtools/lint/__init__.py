"""repro.devtools.lint — AST invariant checks for the repro codebase.

A small, dependency-free static analyser that turns the contracts
DESIGN.md states in prose into machine-checked rules: error policy,
the fingerprint boundary, lock/clock/sqlite discipline, float64
accumulation, mutable defaults, thread hygiene, and the public API
surface. Run it as ``python -m repro.devtools.lint``; see DESIGN.md
"Static invariants" for the rule-by-rule rationale.
"""

from repro.devtools.lint.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
)
from repro.devtools.lint.driver import (
    LintResult,
    ModuleContext,
    ProjectContext,
    discover_files,
    lint_source,
    run_lint,
)
from repro.devtools.lint.findings import UNUSED_SUPPRESSION_RULE, Finding
from repro.devtools.lint.registry import (
    Rule,
    all_rules,
    get_rule,
    register_rule,
    select_rules,
)

__all__ = [
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "UNUSED_SUPPRESSION_RULE",
    "all_rules",
    "discover_files",
    "get_rule",
    "lint_source",
    "register_rule",
    "run_lint",
    "select_rules",
]
