"""Structured lint findings and their stable identity.

A :class:`Finding` is one rule violation at one source location. Its
:attr:`~Finding.fingerprint` deliberately excludes the line number:
baseline entries must survive unrelated edits above the offending line,
so identity is ``(rule, path, stripped source line)`` — the same triple
the baseline file records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Pseudo-rule id reported for suppression comments that matched nothing.
UNUSED_SUPPRESSION_RULE = "REPRO000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which contract it breaks, why."""

    path: str
    line: int
    rule: str
    message: str
    snippet: str = ""
    col: int = 0
    rule_name: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> "tuple[str, str, str]":
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.snippet.strip())

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "rule_name": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Finding":
        return cls(
            rule=str(record["rule"]),
            rule_name=str(record.get("rule_name", "")),
            path=str(record["path"]),
            line=int(record["line"]),
            col=int(record.get("col", 0)),
            message=str(record["message"]),
            snippet=str(record.get("snippet", "")),
        )

    def render(self) -> str:
        """The one-line text form: ``path:line: RULE message``."""
        label = f"{self.rule}[{self.rule_name}]" if self.rule_name else self.rule
        return f"{self.path}:{self.line}: {label} {self.message}"
