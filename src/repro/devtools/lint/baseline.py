"""The committed baseline: grandfathered findings, each with a reason.

The baseline file (``lint-baseline.json`` at the repo root) records
findings that are *deliberate* — a contract exception the code comments
justify — so the linter can gate on **new** findings while the accepted
ones stay visible and accounted for. Three properties keep it honest:

* every entry carries a non-empty ``justification`` (enforced by
  ``--check-baseline`` in CI);
* entries match findings by ``(rule, path, stripped snippet)`` — not by
  line number — so unrelated edits never churn the file;
* an entry that no longer matches any finding is *stale* and fails
  ``--check-baseline``: the baseline only shrinks, it never silently
  accumulates dead exemptions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.devtools.lint.findings import Finding
from repro.errors import ValidationError

#: Default baseline filename, resolved against the lint root.
BASELINE_FILENAME = "lint-baseline.json"

#: Placeholder --write-baseline leaves for a human to replace.
TODO_JUSTIFICATION = "TODO: justify this exemption"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is accepted."""

    rule: str
    path: str
    snippet: str
    justification: str

    @property
    def fingerprint(self) -> "tuple[str, str, str]":
        return (self.rule, self.path, self.snippet.strip())

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "justification": self.justification,
        }


class Baseline:
    """A loaded baseline file plus the matching/stale bookkeeping."""

    def __init__(self, entries: "tuple[BaselineEntry, ...]" = (), *, path=None):
        self.entries = tuple(entries)
        self.path = path

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls((), path=path)
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"lint baseline {path!r} is not valid JSON: {exc}"
                ) from None
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ValidationError(
                f"lint baseline {path!r} must be an object with an "
                "'entries' list"
            )
        entries = []
        for record in payload["entries"]:
            missing = {"rule", "path", "snippet"} - set(record)
            if missing:
                raise ValidationError(
                    f"lint baseline {path!r}: entry {record!r} is missing "
                    f"{sorted(missing)}"
                )
            entries.append(
                BaselineEntry(
                    rule=str(record["rule"]),
                    path=str(record["path"]),
                    snippet=str(record["snippet"]),
                    justification=str(record.get("justification", "")),
                )
            )
        return cls(tuple(entries), path=path)

    def save(self, path: "str | None" = None) -> None:
        target = path or self.path
        if target is None:
            raise ValidationError("Baseline.save needs a path")
        payload = {
            "version": 1,
            "entries": [entry.to_dict() for entry in sorted(
                self.entries, key=lambda e: (e.path, e.rule, e.snippet)
            )],
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #

    def split(
        self, findings: "list[Finding]"
    ) -> "tuple[list[Finding], list[Finding], list[BaselineEntry]]":
        """``(new, grandfathered, stale_entries)`` for this run.

        One entry may absorb several identical findings (the same
        offending line duplicated by a refactor still describes one
        accepted exemption).
        """
        known = {entry.fingerprint: entry for entry in self.entries}
        new: "list[Finding]" = []
        grandfathered: "list[Finding]" = []
        used: "set[tuple[str, str, str]]" = set()
        for finding in findings:
            if finding.fingerprint in known:
                grandfathered.append(finding)
                used.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = [
            entry for entry in self.entries if entry.fingerprint not in used
        ]
        return new, grandfathered, stale

    def problems(self, findings: "list[Finding]") -> "list[str]":
        """Everything ``--check-baseline`` refuses: stale entries and
        missing/placeholder justifications."""
        issues = []
        _, _, stale = self.split(findings)
        for entry in stale:
            issues.append(
                f"stale baseline entry {entry.rule} for {entry.path!r} "
                f"({entry.snippet.strip()!r}) matches no current finding — "
                "remove it; the baseline only shrinks"
            )
        for entry in self.entries:
            justification = entry.justification.strip()
            if not justification or justification == TODO_JUSTIFICATION:
                issues.append(
                    f"baseline entry {entry.rule} for {entry.path!r} has no "
                    "justification — every grandfathered finding needs a "
                    "one-line reason"
                )
        return issues

    def regenerated(self, findings: "list[Finding]") -> "Baseline":
        """The baseline covering exactly ``findings`` (``--write-baseline``).

        Entries that still match keep their justifications, stale entries
        are dropped (the expire half of the contract), and genuinely new
        findings get a placeholder justification that
        ``--check-baseline`` rejects until a human replaces it.
        """
        known = {entry.fingerprint: entry for entry in self.entries}
        entries: "list[BaselineEntry]" = []
        seen: "set[tuple[str, str, str]]" = set()
        for finding in findings:
            fingerprint = finding.fingerprint
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            entries.append(
                known.get(fingerprint)
                or BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    snippet=finding.snippet.strip(),
                    justification=TODO_JUSTIFICATION,
                )
            )
        return Baseline(tuple(entries), path=self.path)
