"""The lint-rule registry: ``@register_rule("REPRO001", ...)``.

Rules come in two scopes:

* ``module`` — called once per linted file with a
  :class:`~repro.devtools.lint.driver.ModuleContext` (source + parsed
  AST); yields :class:`~repro.devtools.lint.findings.Finding` records.
* ``project`` — called once per run with a
  :class:`~repro.devtools.lint.driver.ProjectContext` (repo root +
  linted paths); for cross-file contracts like the public-surface guard.

Registration is import-time side effect of :mod:`repro.devtools.lint.rules`;
ids must be unique and are the stable names suppressions, baselines and
``--select/--ignore`` address.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ValidationError

_RULE_ID = re.compile(r"^REPRO\d{3}$")


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, scope, and the check callable."""

    id: str
    name: str
    rationale: str
    scope: str
    check: object

    def __call__(self, ctx):
        return self.check(ctx)


_RULES: "dict[str, Rule]" = {}


def register_rule(rule_id: str, *, name: str, rationale: str, scope: str = "module"):
    """Class the decorated callable as the checker for ``rule_id``.

    ``name`` is the short kebab-case label shown next to the id,
    ``rationale`` the one-paragraph contract statement (surfaced by
    ``--list-rules``), ``scope`` either ``"module"`` or ``"project"``.
    """
    if not _RULE_ID.match(rule_id):
        raise ValidationError(
            f"lint rule ids look like 'REPRO001', got {rule_id!r}"
        )
    if scope not in ("module", "project"):
        raise ValidationError(
            f"lint rule scope must be 'module' or 'project', got {scope!r}"
        )

    def decorator(func):
        if rule_id in _RULES:
            raise ValidationError(f"lint rule {rule_id} registered twice")
        _RULES[rule_id] = Rule(
            id=rule_id, name=str(name), rationale=str(rationale),
            scope=scope, check=func,
        )
        return func

    return decorator


def all_rules() -> "tuple[Rule, ...]":
    """Every registered rule, ordered by id."""
    _ensure_builtin_rules()
    return tuple(_RULES[rule_id] for rule_id in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ValidationError(
            f"unknown lint rule {rule_id!r}; registered: "
            f"{', '.join(sorted(_RULES))}"
        ) from None


def select_rules(
    select: "tuple[str, ...] | None" = None,
    ignore: "tuple[str, ...] | None" = None,
) -> "tuple[Rule, ...]":
    """The rule set after ``--select`` / ``--ignore`` filtering.

    Unknown ids in either list raise a named error — a typo'd selection
    silently checking nothing is worse than no linter at all.
    """
    rules = all_rules()
    known = {rule.id for rule in rules}
    for requested in (select or ()) + (ignore or ()):
        if requested not in known:
            raise ValidationError(
                f"unknown lint rule {requested!r}; registered: "
                f"{', '.join(sorted(known))}"
            )
    if select:
        rules = tuple(rule for rule in rules if rule.id in set(select))
    if ignore:
        rules = tuple(rule for rule in rules if rule.id not in set(ignore))
    return rules


def _ensure_builtin_rules() -> None:
    # The built-in rules register themselves on import; importing here
    # (not at module import) keeps registry <-> rules acyclic.
    from repro.devtools.lint import rules  # noqa: F401
