"""``python -m repro.devtools.lint`` — the command-line entry point.

Exit codes:

* ``0`` — clean (modulo the committed baseline);
* ``1`` — new findings, or ``--check-baseline`` problems;
* ``2`` — usage errors (unknown rule id, unreadable path, bad baseline).

The default invocation lints ``src/repro`` against
``<root>/lint-baseline.json``; CI adds ``--check-baseline`` so stale or
unjustified baseline entries fail the build too ("the baseline only
shrinks").
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.devtools.lint.baseline import BASELINE_FILENAME, Baseline
from repro.devtools.lint.driver import run_lint
from repro.devtools.lint.registry import all_rules
from repro.devtools.lint.reporters import render_json, render_text
from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "AST-based invariant checker for the repro codebase "
            "(see DESIGN.md 'Static invariants')."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint, relative to --root "
             "(default: src/repro)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repo root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: every finding gates",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="RULE",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover exactly the current findings "
             "(keeps existing justifications, drops stale entries, new "
             "entries get a TODO placeholder to fill in)",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="also fail on stale or unjustified baseline entries",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules with their rationales and exit",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.id}[{rule.name}] ({rule.scope})")
            print(f"    {rule.rationale}")
        return 0
    root = os.path.abspath(options.root)
    paths = tuple(options.paths) if options.paths else ("src/repro",)
    try:
        if options.no_baseline:
            baseline = Baseline()
        else:
            baseline_path = options.baseline or os.path.join(
                root, BASELINE_FILENAME
            )
            baseline = Baseline.load(baseline_path)
        result = run_lint(
            root=root,
            paths=paths,
            select=tuple(options.select) if options.select else None,
            ignore=tuple(options.ignore) if options.ignore else None,
            baseline=baseline,
        )
        if options.write_baseline:
            if options.no_baseline:
                parser.error("--write-baseline conflicts with --no-baseline")
            # Regenerate from the pre-baseline findings: everything the
            # rules reported this run, grandfathered or not.
            findings = sorted(result.new + result.grandfathered)
            baseline.regenerated(findings).save()
            print(
                f"baseline rewritten with {len(findings)} finding(s); "
                "replace any TODO justifications before committing",
                file=sys.stderr,
            )
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = (
        render_json(result) if options.format == "json"
        else render_text(result)
    )
    print(report, end="" if report.endswith("\n") else "\n")
    failed = bool(result.gating)
    if options.check_baseline and result.baseline_problems:
        failed = True
    return 1 if failed else 0
