"""Module entry point: ``python -m repro.devtools.lint``."""

import sys

from repro.devtools.lint.cli import main

sys.exit(main())
