"""Reporters: the text view for humans, the JSON view for tooling.

Both render the same :class:`~repro.devtools.lint.driver.LintResult`;
the JSON payload round-trips through ``Finding.from_dict`` so CI
annotations and editors can rebuild the exact findings.
"""

from __future__ import annotations

import json

from repro.devtools.lint.driver import LintResult
from repro.devtools.lint.findings import Finding

#: ``--format json`` payload version; bump on shape changes.
JSON_REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """The human report: one line per finding, then the tallies."""
    lines: "list[str]" = []
    for finding in result.new:
        lines.append(finding.render())
    if result.grandfathered:
        lines.append("")
        lines.append(f"grandfathered (baseline, {len(result.grandfathered)}):")
        for finding in result.grandfathered:
            lines.append(f"  {finding.render()}")
    if result.baseline_problems:
        lines.append("")
        lines.append("baseline problems:")
        for problem in result.baseline_problems:
            lines.append(f"  {problem}")
    lines.append("")
    lines.append(
        f"{result.checked_files} files checked, "
        f"{len(result.new)} new finding(s), "
        f"{len(result.grandfathered)} grandfathered, "
        f"{len(result.baseline_problems)} baseline problem(s)"
    )
    return "\n".join(lines).lstrip("\n")


def render_json(result: LintResult) -> str:
    """The machine report (stable shape, see ``JSON_REPORT_VERSION``)."""
    payload = {
        "version": JSON_REPORT_VERSION,
        "findings": [finding.to_dict() for finding in result.new],
        "grandfathered": [
            finding.to_dict() for finding in result.grandfathered
        ],
        "baseline_problems": list(result.baseline_problems),
        "counts": {
            "files": result.checked_files,
            "new": len(result.new),
            "grandfathered": len(result.grandfathered),
            "baseline_problems": len(result.baseline_problems),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def parse_json_report(text: str) -> "dict":
    """Inverse of :func:`render_json`, with findings rebuilt as objects."""
    payload = json.loads(text)
    payload["findings"] = [
        Finding.from_dict(record) for record in payload.get("findings", [])
    ]
    payload["grandfathered"] = [
        Finding.from_dict(record)
        for record in payload.get("grandfathered", [])
    ]
    return payload
