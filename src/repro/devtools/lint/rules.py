"""The project-specific rules: documented contracts, machine-checked.

Each rule enforces an invariant an earlier PR established by convention
and DESIGN.md documents in prose (see "Static invariants" there). Rules
are deliberately narrow: they prove a violation from the AST alone and
never guess — anything genuinely intentional goes through an inline
suppression or the committed baseline, both of which are themselves
audited (unused suppressions and stale baseline entries are findings).
"""

from __future__ import annotations

import ast

from repro.devtools.lint.registry import register_rule

# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def _dotted(node: "ast.AST | None") -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` otherwise."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _walk_with_function_stack(tree: ast.AST):
    """Yield ``(node, function_name_stack)`` over the whole tree."""

    def visit(node: ast.AST, stack: "tuple[str, ...]"):
        yield node, stack
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack = stack + (node.name,)
        for child in ast.iter_child_nodes(node):
            yield from visit(child, stack)

    yield from visit(tree, ())


def _function_defs(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _statement_blocks(tree: ast.AST):
    """Every list of statements in the tree (module/function/branch bodies)."""
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(node, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


# --------------------------------------------------------------------- #
# REPRO001 — named-error policy
# --------------------------------------------------------------------- #

#: Builtins the library must never raise bare — callers are promised one
#: catchable ReproError family (errors.py). NotImplementedError and
#: StopIteration stay legal: they are protocol, not error reporting.
_BARE_BUILTINS = frozenset({
    "KeyError", "TypeError", "ValueError", "IndexError",
    "AttributeError", "RuntimeError", "Exception",
})


@register_rule(
    "REPRO001",
    name="error-policy",
    rationale=(
        "Library code raises the repro.errors hierarchy, never bare "
        "builtins: callers catch ReproError as one family, and the named "
        "subclasses carry the context a bare KeyError loses (PR 5 removed "
        "the last registry KeyError/TypeError leaks)."
    ),
)
def check_error_policy(ctx):
    if not ctx.in_repro_source() or ctx.path == "src/repro/errors.py":
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        if name in _BARE_BUILTINS:
            yield ctx.finding(
                check_error_policy._rule, node,
                f"bare `raise {name}` in a public module — raise a "
                "repro.errors subclass (e.g. ValidationError) so callers "
                "can catch the ReproError family",
            )


# --------------------------------------------------------------------- #
# REPRO002 — fingerprint boundary
# --------------------------------------------------------------------- #

#: Functions that feed content keys (store addresses, campaign node
#: keys, kernel fingerprints). DESIGN.md "KernelSpec is the fingerprint
#: boundary" / "Campaign node keys".
_KEY_FUNCS = frozenset({
    "fingerprint", "_fingerprint_extra", "stable_config",
    "node_key", "context_cache_record", "gram_key", "tile_key",
    "tile_keyer_for",
})

#: ExecutionContext fields that are scheduling/persistence, not values.
#: The engine-equivalence tests pin these to identical results, so they
#: must never enter a content key: moving a campaign to another store or
#: engine must *skip*, not recompute.
_SCHEDULE_FIELDS = frozenset({
    "engine", "tile_size", "store", "sink", "sink_factory",
    "tile_checkpoint",
})


@register_rule(
    "REPRO002",
    name="fingerprint-boundary",
    rationale=(
        "Key-producing functions (fingerprint/node_key/gram_key) may read "
        "only value-relevant ExecutionContext fields; engine, tile size "
        "and store placement are scheduling and must not leak into "
        "content keys (PR 5/PR 8 cache-boundary design)."
    ),
)
def check_fingerprint_boundary(ctx):
    if not ctx.in_repro_source():
        return
    rule = check_fingerprint_boundary._rule
    for func in _function_defs(ctx.tree):
        if func.name not in _KEY_FUNCS:
            continue
        for node in ast.walk(func):
            if isinstance(node, ast.Attribute) and node.attr in _SCHEDULE_FIELDS:
                yield ctx.finding(
                    rule, node,
                    f"key function {func.name}() reads schedule-only field "
                    f".{node.attr} — only value-relevant fields (normalize, "
                    "ensure_psd, backend, precision, entropy) may enter a "
                    "content key",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value in _SCHEDULE_FIELDS
            ):
                yield ctx.finding(
                    rule, node,
                    f"key function {func.name}() reads schedule-only record "
                    f"field {node.args[0].value!r} — scheduling must not "
                    "enter a content key",
                )
            elif (
                isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and node.slice.value in _SCHEDULE_FIELDS
            ):
                yield ctx.finding(
                    rule, node,
                    f"key function {func.name}() reads schedule-only record "
                    f"field {node.slice.value!r} — scheduling must not "
                    "enter a content key",
                )


# --------------------------------------------------------------------- #
# REPRO003 — lock discipline
# --------------------------------------------------------------------- #


@register_rule(
    "REPRO003",
    name="lock-discipline",
    rationale=(
        "Locks are held through `with`, never a naked .acquire(): every "
        "early return/exception path must release, and `with` proves it "
        "structurally. The one legal manual form is acquire immediately "
        "followed by try/finally releasing the same lock."
    ),
)
def check_lock_discipline(ctx):
    if not ctx.in_repro_source():
        return
    rule = check_lock_discipline._rule
    allowed: "set[int]" = set()
    for block in _statement_blocks(ctx.tree):
        for index, stmt in enumerate(block):
            call = _acquire_call(stmt)
            if call is None:
                continue
            receiver = _dotted(call.func.value)
            follower = block[index + 1] if index + 1 < len(block) else None
            if (
                receiver
                and isinstance(follower, ast.Try)
                and any(
                    _is_release_of(inner, receiver)
                    for fin in follower.finalbody
                    for inner in ast.walk(fin)
                )
            ):
                allowed.add(id(call))
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
            and id(node) not in allowed
        ):
            receiver = _dotted(node.func.value) or "<lock>"
            yield ctx.finding(
                rule, node,
                f"{receiver}.acquire() without a try/finally "
                f"{receiver}.release() — hold locks via `with {receiver}:`",
            )


def _acquire_call(stmt: ast.stmt) -> "ast.Call | None":
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "acquire"
    ):
        return value
    return None


def _is_release_of(node: ast.AST, receiver: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "release"
        and _dotted(node.func.value) == receiver
    )


# --------------------------------------------------------------------- #
# REPRO004 — clock discipline
# --------------------------------------------------------------------- #

#: Modules whose time-dependent behaviour must flow through an injected
#: ``clock`` parameter so lease/backoff/uptime tests run in virtual time.
#: ``time.monotonic`` stays legal — it measures *elapsed* real time
#: (poll loops, deadlines on real blocking), which no FakeClock can
#: meaningfully replace.
_CLOCK_PATHS = (
    "src/repro/store/claims.py",
    "src/repro/jobs/",
    "src/repro/serve/batcher.py",
    "src/repro/serve/server.py",
    "src/repro/campaign/db.py",
)


@register_rule(
    "REPRO004",
    name="clock-discipline",
    rationale=(
        "Lease, backoff and uptime logic reads wall-clock time only "
        "through an injected clock (the store.claims FakeClock seam, "
        "PR 7/8): a naked time.time() makes expiry untestable without "
        "real sleeps and un-fakeable in virtual-time tests."
    ),
)
def check_clock_discipline(ctx):
    if not any(ctx.path.startswith(prefix) for prefix in _CLOCK_PATHS):
        return
    rule = check_clock_discipline._rule
    bare_time_imported = any(
        isinstance(node, ast.ImportFrom)
        and node.module == "time"
        and any(alias.name == "time" for alias in node.names)
        for node in ast.walk(ctx.tree)
    )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        is_naked = (
            _dotted(node.func) == "time.time"
            or (
                bare_time_imported
                and isinstance(node.func, ast.Name)
                and node.func.id == "time"
            )
        )
        if is_naked:
            yield ctx.finding(
                rule, node,
                "naked time.time() call in a clock-disciplined module — "
                "read the injected `clock` (default `clock=time.time` in "
                "the constructor is the one legal reference)",
            )


# --------------------------------------------------------------------- #
# REPRO005 — sqlite transaction discipline
# --------------------------------------------------------------------- #

#: The transaction/read helpers a shared-connection module must route
#: every statement through (their bodies are the one place a raw
#: ``self._conn.execute`` is legal).
_TXN_HELPERS = frozenset({"_txn", "_read"})

_EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})


@register_rule(
    "REPRO005",
    name="sqlite-discipline",
    rationale=(
        "Every statement on a shared sqlite connection runs inside the "
        "module's _txn()/_read() helper: _txn serialises writers with "
        "BEGIN IMMEDIATE and guarantees COMMIT-or-ROLLBACK, so a process "
        "killed at any point leaves whole rows, never torn ones (the "
        "JobQueue/CampaignDB durability contract, PR 8)."
    ),
)
def check_sqlite_discipline(ctx):
    if not ctx.in_repro_source():
        return
    rule = check_sqlite_discipline._rule
    for node, stack in _walk_with_function_stack(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _EXECUTE_METHODS
            and _dotted(node.func.value).endswith("._conn")
            and not any(name in _TXN_HELPERS for name in stack)
        ):
            yield ctx.finding(
                rule, node,
                f"raw {_dotted(node.func.value)}.{node.func.attr}() outside "
                "the _txn()/_read() helpers — shared-connection statements "
                "must run inside one committed transaction",
            )


# --------------------------------------------------------------------- #
# REPRO006 — float64 accumulation in backend reductions
# --------------------------------------------------------------------- #

#: ArrayBackend reduction methods contracted to return host float64
#: (backend/base.py: "Reductions (device in, host float64 out)").
_REDUCTIONS = frozenset({"entropy_reduce", "trace", "pair_trace", "gershgorin"})


@register_rule(
    "REPRO006",
    name="float64-accumulation",
    rationale=(
        "Backend reductions accumulate and return host float64 even when "
        "device compute runs float32 — the mixed-precision accuracy tiers "
        "(DESIGN.md 'why accumulation stays float64', PR 6) assume tile "
        "sums never inherit device round-off. A float32 accumulator "
        "silently breaks the documented 1e-5 tier."
    ),
)
def check_float64_accumulation(ctx):
    if not ctx.path.startswith("src/repro/backend/"):
        return
    rule = check_float64_accumulation._rule
    for func in _function_defs(ctx.tree):
        if func.name not in _REDUCTIONS:
            continue
        for node in ast.walk(func):
            is_float32 = (
                isinstance(node, ast.Attribute) and node.attr == "float32"
            ) or (
                isinstance(node, ast.Constant) and node.value == "float32"
            )
            if is_float32:
                yield ctx.finding(
                    rule, node,
                    f"float32 in reduction {func.name}() — backend "
                    "reductions accumulate and return host float64",
                )


# --------------------------------------------------------------------- #
# REPRO007 — no mutable default arguments
# --------------------------------------------------------------------- #

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


@register_rule(
    "REPRO007",
    name="mutable-defaults",
    rationale=(
        "A mutable default is one shared object across every call — "
        "state leaks between Sessions/requests in the long-lived serving "
        "process. Use None plus an in-body default (or "
        "dataclasses.field(default_factory=...))."
    ),
)
def check_mutable_defaults(ctx):
    rule = check_mutable_defaults._rule
    for func in _function_defs(ctx.tree):
        defaults = list(func.args.defaults)
        defaults.extend(d for d in func.args.kw_defaults if d is not None)
        for default in defaults:
            if _is_mutable_literal(default):
                yield ctx.finding(
                    rule, default,
                    f"mutable default argument in {func.name}() — one "
                    "object is shared across every call; default to None "
                    "and materialise inside the body",
                )


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    )


# --------------------------------------------------------------------- #
# REPRO008 — thread-spawn hygiene
# --------------------------------------------------------------------- #


@register_rule(
    "REPRO008",
    name="thread-hygiene",
    rationale=(
        "Every threading.Thread is daemon=True (dies with a crashing "
        "owner — the worker-heartbeat rationale, PR 7) or joined by the "
        "code that spawned it; an untracked non-daemon thread keeps the "
        "process alive after close() and leaks under test."
    ),
)
def check_thread_hygiene(ctx):
    if not ctx.in_repro_source():
        return
    rule = check_thread_hygiene._rule
    assigned: "dict[int, str]" = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = _dotted(node.targets[0])
            if target:
                assigned[id(node.value)] = target
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and _is_thread_ctor(node.func)):
            continue
        daemon = next(
            (kw.value for kw in node.keywords if kw.arg == "daemon"), None
        )
        if isinstance(daemon, ast.Constant) and daemon.value is True:
            continue
        target = assigned.get(id(node))
        attr = target.split(".")[-1] if target else None
        if attr and f"{attr}.join(" in ctx.source:
            continue
        yield ctx.finding(
            rule, node,
            "threading.Thread is neither daemon=True nor joined by its "
            "owner — pass daemon=True, or keep a handle and join it in "
            "close()",
        )


def _is_thread_ctor(func: ast.AST) -> bool:
    if isinstance(func, ast.Attribute):
        return func.attr == "Thread" and _dotted(func.value) == "threading"
    return isinstance(func, ast.Name) and func.id == "Thread"


# --------------------------------------------------------------------- #
# REPRO009 — public-surface guard
# --------------------------------------------------------------------- #

_EXPORTS_FILE = "tests/api/expected_exports.txt"
_INIT_FILE = "src/repro/__init__.py"
_REGEN_HINT = (
    "after review, regenerate with: PYTHONPATH=src python -c "
    "\"import repro; print('\\n'.join(sorted(repro.__all__)))\" "
    f"> {_EXPORTS_FILE}"
)


@register_rule(
    "REPRO009",
    name="public-surface",
    rationale=(
        "repro.__all__ and the committed tests/api/expected_exports.txt "
        "agree exactly: adding or dropping a top-level export is a "
        "reviewed decision (PR 5), and lint reports the symbol-level diff "
        "with a regeneration hint instead of a bare test assertion."
    ),
    scope="project",
)
def check_public_surface(project):
    from repro.devtools.lint.findings import Finding

    rule = check_public_surface._rule
    init_source = project.read(_INIT_FILE)
    if init_source is None:
        # No top-level package under this root (e.g. a fixture project):
        # there is no public surface to guard.
        return
    expected_text = project.read(_EXPORTS_FILE)
    if expected_text is None:
        yield Finding(
            rule=rule.id, rule_name=rule.name, path=_EXPORTS_FILE, line=1,
            message=(
                f"{_INIT_FILE} declares a public surface but "
                f"{_EXPORTS_FILE} is missing; {_REGEN_HINT}"
            ),
        )
        return
    declared, line = _parse_all(init_source)
    if declared is None:
        yield Finding(
            rule=rule.id, rule_name=rule.name, path=_INIT_FILE, line=1,
            message="__all__ must be a literal list of strings",
        )
        return
    expected = {entry.strip() for entry in expected_text.splitlines() if entry.strip()}
    for symbol in sorted(set(declared) - expected):
        yield Finding(
            rule=rule.id, rule_name=rule.name, path=_INIT_FILE, line=line,
            message=(
                f"accidental export: {symbol!r} is in repro.__all__ but "
                f"not in {_EXPORTS_FILE}; {_REGEN_HINT}"
            ),
            snippet=f"__all__ += [{symbol!r}]",
        )
    for symbol in sorted(expected - set(declared)):
        yield Finding(
            rule=rule.id, rule_name=rule.name, path=_INIT_FILE, line=line,
            message=(
                f"unexported public symbol: {symbol!r} is promised by "
                f"{_EXPORTS_FILE} but missing from repro.__all__; "
                f"{_REGEN_HINT}"
            ),
            snippet=f"__all__ -= [{symbol!r}]",
        )


def _parse_all(source: str) -> "tuple[list[str] | None, int]":
    tree = ast.parse(source)
    for node in ast.walk(tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            for elt in value.elts
        ):
            return [elt.value for elt in value.elts], node.lineno
        return None, node.lineno
    return None, 1


# --------------------------------------------------------------------- #
# Back-references: each checker knows its Rule record (set at import).
# --------------------------------------------------------------------- #

def _bind_rules() -> None:
    from repro.devtools.lint.registry import all_rules

    checkers = {
        "REPRO001": check_error_policy,
        "REPRO002": check_fingerprint_boundary,
        "REPRO003": check_lock_discipline,
        "REPRO004": check_clock_discipline,
        "REPRO005": check_sqlite_discipline,
        "REPRO006": check_float64_accumulation,
        "REPRO007": check_mutable_defaults,
        "REPRO008": check_thread_hygiene,
        "REPRO009": check_public_surface,
    }
    for rule in all_rules():
        if rule.id in checkers:
            checkers[rule.id]._rule = rule


_bind_rules()
