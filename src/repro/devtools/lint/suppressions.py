"""Inline suppressions: ``# repro-lint: ignore[REPRO004]``.

A suppression comment silences the named rule(s):

* on its own line — for the next following source line that carries code
  (the common "comment above the offending statement" form);
* at the end of a code line — for that line exactly.

Every suppression must name rule ids (``ignore[REPRO003, REPRO008]``);
a blanket ignore-everything form does not exist on purpose. Suppressions
that match no finding are themselves reported (rule ``REPRO000``) so
stale exemptions cannot linger after the offending code is fixed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PATTERN = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")
_MALFORMED = re.compile(r"#\s*repro-lint:")


@dataclass
class Suppression:
    """One parsed suppression comment and its usage accounting."""

    comment_line: int
    target_line: int
    rules: "tuple[str, ...]"
    used: "set[str]" = field(default_factory=set)

    @property
    def unused_rules(self) -> "tuple[str, ...]":
        return tuple(rule for rule in self.rules if rule not in self.used)


def parse_suppressions(source: str) -> "list[Suppression]":
    """Every suppression comment in ``source``, with its target line.

    Malformed ``repro-lint:`` comments (wrong verb, missing bracket,
    empty rule list) parse to a rule-less suppression, which the driver
    then reports as unused — a typo'd suppression must be visible, not
    silently inert.
    """
    lines = source.splitlines()
    suppressions: "list[Suppression]" = []
    for index, col, text in _comments(source):
        match = _PATTERN.search(text)
        if match is None:
            if _MALFORMED.search(text):
                suppressions.append(
                    Suppression(comment_line=index, target_line=index, rules=())
                )
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        target = index
        line_text = lines[index - 1] if index <= len(lines) else ""
        before_comment = line_text[:col].strip()
        if not before_comment:
            # Comment-only line: the suppression covers the next line
            # that holds code (skipping further comment/blank lines).
            for offset, following in enumerate(lines[index:], start=index + 1):
                stripped = following.strip()
                if stripped and not stripped.startswith("#"):
                    target = offset
                    break
        suppressions.append(
            Suppression(comment_line=index, target_line=target, rules=rules)
        )
    return suppressions


def _comments(source: str) -> "list[tuple[int, int, str]]":
    """``(line, col, text)`` for every real comment token in ``source``.

    Tokenising (rather than scanning lines) keeps suppression syntax
    quoted inside a docstring or string literal — e.g. this module's own
    documentation — from being parsed as a live suppression.
    """
    found: "list[tuple[int, int, str]]" = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                found.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable source is reported by the driver as a finding;
        # treat it as suppression-free rather than failing here too.
        return []
    return found


def suppression_index(
    suppressions: "list[Suppression]",
) -> "dict[int, list[Suppression]]":
    """``{target_line: suppressions}`` for O(1) lookup per finding."""
    index: "dict[int, list[Suppression]]" = {}
    for suppression in suppressions:
        index.setdefault(suppression.target_line, []).append(suppression)
    return index
