"""The lint driver: walk files, run rules, apply suppressions + baseline.

The pipeline of one :func:`run_lint` call:

1. discover ``*.py`` files under the requested paths (repo-root
   relative, POSIX-normalised — finding paths are stable across
   machines and operating systems);
2. per file, parse once and hand the :class:`ModuleContext` to every
   module-scope rule; project-scope rules run once over the
   :class:`ProjectContext`;
3. drop findings an inline suppression covers, then report suppressions
   that covered nothing (rule ``REPRO000`` — a stale exemption is itself
   a finding);
4. split the remainder against the committed baseline into *new*
   (gating) and *grandfathered* (visible, accepted) findings.

Rules never see suppressions or the baseline; they just yield every
violation they can prove. All policy about which findings *matter* lives
here, in one place.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.devtools.lint.baseline import Baseline
from repro.devtools.lint.findings import UNUSED_SUPPRESSION_RULE, Finding
from repro.devtools.lint.registry import Rule, select_rules
from repro.devtools.lint.suppressions import (
    parse_suppressions,
    suppression_index,
)
from repro.errors import ValidationError


class ModuleContext:
    """One file as the module-scope rules see it."""

    def __init__(self, path: str, source: str) -> None:
        #: Repo-root-relative POSIX path ("src/repro/jobs/queue.py").
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self._tree: "ast.AST | None" = None

    @property
    def tree(self) -> ast.AST:
        if self._tree is None:
            try:
                self._tree = ast.parse(self.source, filename=self.path)
            except SyntaxError as exc:
                raise ValidationError(
                    f"lint cannot parse {self.path!r}: {exc}"
                ) from None
        return self._tree

    def in_repro_source(self) -> bool:
        """Whether this file is part of the library proper."""
        return self.path.startswith("src/repro/")

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: Rule, node: "ast.AST | int", message: str) -> Finding:
        """Build a Finding anchored at ``node`` (or a raw line number)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            rule_name=rule.name,
            path=self.path,
            line=line,
            col=col,
            message=message,
            snippet=self.snippet(line),
        )


@dataclass
class ProjectContext:
    """What the project-scope rules see: the root and the linted files."""

    root: str
    modules: "list[ModuleContext]" = field(default_factory=list)

    def read(self, relpath: str) -> "str | None":
        """The text of a repo file, or ``None`` when it does not exist."""
        target = os.path.join(self.root, relpath)
        if not os.path.exists(target):
            return None
        with open(target, encoding="utf-8") as handle:
            return handle.read()


@dataclass
class LintResult:
    """Everything one run produced, pre-sliced for the reporters."""

    new: "list[Finding]"
    grandfathered: "list[Finding]"
    baseline_problems: "list[str]"
    checked_files: int
    rules: "tuple[Rule, ...]"

    @property
    def gating(self) -> "list[Finding]":
        """The findings that make the run fail (new, non-baselined)."""
        return self.new


def discover_files(root: str, paths: "tuple[str, ...]") -> "list[str]":
    """Repo-relative ``*.py`` files under ``paths`` (files or trees)."""
    found: "list[str]" = []
    for requested in paths:
        absolute = os.path.join(root, requested)
        if os.path.isfile(absolute):
            found.append(os.path.relpath(absolute, root))
            continue
        if not os.path.isdir(absolute):
            raise ValidationError(
                f"lint path {requested!r} does not exist under {root!r}"
            )
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(
                        os.path.relpath(os.path.join(dirpath, filename), root)
                    )
    # De-duplicate while keeping discovery order deterministic.
    seen: "set[str]" = set()
    unique = []
    for path in found:
        normal = path.replace(os.sep, "/")
        if normal not in seen:
            seen.add(normal)
            unique.append(normal)
    return unique


def lint_source(
    source: str,
    *,
    path: str,
    rules: "tuple[Rule, ...] | None" = None,
) -> "list[Finding]":
    """Run the module-scope rules over in-memory ``source``.

    ``path`` is the *logical* repo-relative path the rules key their
    applicability on — the fixture tests lint checked-in violation
    samples under the paths of the modules whose contracts they break.
    Suppressions are honoured; unused ones are reported.
    """
    context = ModuleContext(path, source)
    active = rules if rules is not None else select_rules()
    raw: "list[Finding]" = []
    for rule in active:
        if rule.scope != "module":
            continue
        raw.extend(rule.check(context))
    return _apply_suppressions(context, raw)


def run_lint(
    *,
    root: str,
    paths: "tuple[str, ...]" = ("src/repro",),
    select: "tuple[str, ...] | None" = None,
    ignore: "tuple[str, ...] | None" = None,
    baseline: "Baseline | None" = None,
) -> LintResult:
    """Lint ``paths`` under ``root`` and split against the baseline."""
    rules = select_rules(select, ignore)
    module_rules = tuple(rule for rule in rules if rule.scope == "module")
    project_rules = tuple(rule for rule in rules if rule.scope == "project")
    project = ProjectContext(root=root)
    findings: "list[Finding]" = []
    files = discover_files(root, tuple(paths))
    for relpath in files:
        with open(os.path.join(root, relpath), encoding="utf-8") as handle:
            source = handle.read()
        context = ModuleContext(relpath, source)
        project.modules.append(context)
        raw = []
        for rule in module_rules:
            raw.extend(rule.check(context))
        findings.extend(_apply_suppressions(context, raw))
    for rule in project_rules:
        findings.extend(rule.check(project))
    findings.sort()
    active_baseline = baseline if baseline is not None else Baseline()
    new, grandfathered, _ = active_baseline.split(findings)
    return LintResult(
        new=new,
        grandfathered=grandfathered,
        baseline_problems=active_baseline.problems(findings),
        checked_files=len(files),
        rules=rules,
    )


def _apply_suppressions(
    context: ModuleContext, findings: "list[Finding]"
) -> "list[Finding]":
    suppressions = parse_suppressions(context.source)
    index = suppression_index(suppressions)
    kept: "list[Finding]" = []
    for finding in findings:
        suppressed = False
        for suppression in index.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
                suppressed = True
        if not suppressed:
            kept.append(finding)
    for suppression in suppressions:
        if not suppression.rules:
            kept.append(
                Finding(
                    rule=UNUSED_SUPPRESSION_RULE,
                    rule_name="unused-suppression",
                    path=context.path,
                    line=suppression.comment_line,
                    message=(
                        "malformed repro-lint comment — the form is "
                        "'# repro-lint: ignore[REPRO00x]'"
                    ),
                    snippet=context.snippet(suppression.comment_line),
                )
            )
            continue
        for rule_id in suppression.unused_rules:
            kept.append(
                Finding(
                    rule=UNUSED_SUPPRESSION_RULE,
                    rule_name="unused-suppression",
                    path=context.path,
                    line=suppression.comment_line,
                    message=(
                        f"suppression for {rule_id} matches no finding — "
                        "remove it (stale exemptions hide regressions)"
                    ),
                    snippet=context.snippet(suppression.comment_line),
                )
            )
    return kept
