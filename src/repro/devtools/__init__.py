"""Developer-facing correctness tooling (not part of the public API).

:mod:`repro.devtools.lint` is the static invariant checker: it turns the
contracts the code comments and DESIGN.md document — the named-error
policy, the fingerprint boundary, lock/lease/clock discipline — into
machine-checked rules that run in CI before the test matrix.
"""
