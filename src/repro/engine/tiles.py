"""Tile plans and Gram sinks — the streaming half of the engine layer.

A Gram computation is described by a :class:`TilePlan` (what shape, cut
into which contiguous ``(row_range, col_range)`` tiles) and consumed by a
:class:`GramSink` (where finished tiles go). The engines schedule the
plan's tiles — serially, batched, or across worker processes — and stream
each finished ``(rows, cols, block)`` into the sink, so the *unit of
scheduling and storage is the tile*, never the full matrix:

``DenseSink``
    An in-memory float64 ndarray — today's behaviour, and the default
    whenever no sink is passed.
``MemmapSink``
    A ``np.memmap`` over an ``.npy`` file (NumPy-format header, so the
    artifact store and plain ``np.load`` read it back), for Gram matrices
    larger than RAM: peak memory is one tile plus the map, regardless of
    ``N``.
``repro.store.tiles.CheckpointSink``
    Wraps another sink and persists every finished tile through an
    :class:`~repro.store.ArtifactStore` under content-addressed tile
    keys, so a killed run resumes at tile granularity. It lives in the
    store layer — this module stays free of store dependencies.

Tile sizes resolve explicit argument > ``REPRO_GRAM_TILE`` environment
variable > per-backend default, mirroring how ``REPRO_GRAM_ENGINE``
selects the backend itself.
"""

from __future__ import annotations

import abc
import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError

#: Environment variable overriding every backend's default tile size.
TILE_ENV_VAR = "REPRO_GRAM_TILE"


def default_tile_size(fallback: int) -> int:
    """The process-wide tile size: ``REPRO_GRAM_TILE``, else ``fallback``.

    A malformed or non-positive value fails loudly, like a typo in
    ``REPRO_GRAM_ENGINE`` — silent fallback would quietly change every
    tile key the checkpoint layer derives from the schedule.
    """
    raw = os.environ.get(TILE_ENV_VAR, "").strip()
    if not raw:
        return int(fallback)
    try:
        size = int(raw)
    except ValueError:
        raise KernelError(
            f"{TILE_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if size < 1:
        raise KernelError(f"{TILE_ENV_VAR} must be >= 1, got {size}")
    return size


@dataclass(frozen=True)
class TilePlan:
    """A Gram computation cut into contiguous index tiles.

    ``symmetric`` plans enumerate only upper-triangle tile pairs
    (``row_range <= col_range``); the sink mirrors off-diagonal tiles, so
    the assembled matrix is symmetric *by construction* — no global
    ``(K + Kᵀ)/2`` pass is needed afterwards.
    """

    n_rows: int
    n_cols: int
    symmetric: bool
    tile_size: int

    @classmethod
    def gram(cls, n: int, tile_size: int) -> "TilePlan":
        """Symmetric ``(n, n)`` plan over one collection."""
        return cls(n_rows=n, n_cols=n, symmetric=True, tile_size=int(tile_size))

    @classmethod
    def cross(cls, n_rows: int, n_cols: int, tile_size: int) -> "TilePlan":
        """Rectangular plan between two collections."""
        return cls(
            n_rows=n_rows, n_cols=n_cols, symmetric=False,
            tile_size=int(tile_size),
        )

    @property
    def shape(self) -> "tuple[int, int]":
        return (self.n_rows, self.n_cols)

    def tiles(self):
        """Yield every ``(rows, cols)`` range pair of this plan, in the
        deterministic schedule order all backends share."""
        from repro.engine.base import symmetric_tile_pairs, tile_ranges

        if self.symmetric:
            yield from symmetric_tile_pairs(self.n_rows, self.tile_size)
            return
        for rows in tile_ranges(self.n_rows, self.tile_size):
            for cols in tile_ranges(self.n_cols, self.tile_size):
                yield rows, cols

    def n_tiles(self) -> int:
        """Total tile count (what a resume run is measured against)."""
        return sum(1 for _ in self.tiles())

    def is_diagonal(self, rows, cols) -> bool:
        """True for a symmetric plan's diagonal tiles (computed from the
        upper triangle of one state slice, mirrored exactly)."""
        return self.symmetric and rows == cols


class GramSink(abc.ABC):
    """Destination for a tile stream.

    Lifecycle: the engine calls :meth:`open` with the plan, asks
    :meth:`has_tile` per tile (the resume hook — a True answer means the
    sink already holds that tile and the engine skips computing it),
    streams the remaining tiles through :meth:`write`, and returns
    :meth:`finalize`'s matrix-like result. Sinks carry one stream at a
    time; ``open`` resets any previous one.
    """

    #: True when :meth:`finalize` returns an ordinary in-memory ndarray —
    #: the gate for post-processing that must densify (PSD projection).
    in_memory: bool = True

    def __init__(self) -> None:
        self.plan: "TilePlan | None" = None

    def open(self, plan: TilePlan) -> None:
        """Bind the sink to one plan and allocate its backing storage."""
        self.plan = plan
        self._allocate(plan)

    def has_tile(self, rows, cols) -> bool:
        """Resume hook: True when this tile is already present (and has
        been placed), so the engine must not recompute it."""
        return False

    def write(self, rows, cols, block: np.ndarray) -> None:
        """Place one finished tile (mirrored for symmetric off-diagonals)."""
        if self.plan is None:
            raise KernelError(f"{type(self).__name__}: write() before open()")
        self._place(rows, cols, np.asarray(block))

    @abc.abstractmethod
    def finalize(self):
        """The assembled matrix-like result (ndarray or memmap)."""

    def commit(self) -> None:
        """Publish the result — called by the top-level computation once
        the matrix is *final*, i.e. after any in-place post-processing
        (tile-wise normalisation) that follows :meth:`finalize`. A no-op
        for most sinks; a staged :class:`MemmapSink` atomically renames
        its backing file into place here, so readers of a canonical path
        can never observe a half-assembled artifact."""

    @abc.abstractmethod
    def _allocate(self, plan: TilePlan) -> None:
        """Subclass hook: create the backing storage for ``plan``."""

    def _place(self, rows, cols, block: np.ndarray) -> None:
        """Default placement into :attr:`matrix`, mirroring symmetric
        off-diagonal tiles across the main diagonal."""
        r0, r1 = rows
        c0, c1 = cols
        if block.shape != (r1 - r0, c1 - c0):
            raise KernelError(
                f"tile ({rows}, {cols}) arrived with shape {block.shape}, "
                f"expected ({r1 - r0}, {c1 - c0})"
            )
        self.matrix[r0:r1, c0:c1] = block
        if self.plan.symmetric and (r0, r1) != (c0, c1):
            self.matrix[c0:c1, r0:r1] = block.T


def stream_tiles(plan: TilePlan, sink: GramSink, block_fn) -> "np.ndarray":
    """Drive one full sink lifecycle from a block producer.

    ``block_fn(rows, cols, diagonal)`` returns the tile's values; the
    helper owns open → has_tile skip → write → finalize, so code paths
    that produce tiles without an engine (feature-map matmuls, dense
    replays) share one implementation of the sink protocol with the
    engine scheduler.
    """
    sink.open(plan)
    for rows, cols in plan.tiles():
        if sink.has_tile(rows, cols):
            continue
        sink.write(rows, cols, block_fn(rows, cols, plan.is_diagonal(rows, cols)))
    return sink.finalize()


class DenseSink(GramSink):
    """In-memory accumulation — the default, and exactly the historical
    behaviour of the engines before tile streams existed."""

    def _allocate(self, plan: TilePlan) -> None:
        self.matrix = np.zeros(plan.shape)

    def finalize(self) -> np.ndarray:
        if self.plan is None:
            raise KernelError("DenseSink: finalize() before open()")
        return self.matrix


class MemmapSink(GramSink):
    """Out-of-core accumulation into an ``.npy``-format memory map.

    The backing file carries a regular NumPy header
    (:func:`numpy.lib.format.open_memmap`), so the finished Gram is
    readable by ``np.load(..., mmap_mode="r")`` and by
    :meth:`repro.store.ArtifactStore.get_memmap` without conversion.
    Peak resident memory is one tile (plus OS page cache, which the
    kernel reclaims under pressure) — the property the out-of-core bench
    pins with ``tracemalloc``.

    Parameters
    ----------
    path:
        Backing file location; ``None`` creates a temporary file (kept on
        disk — the returned memmap stays valid; callers own cleanup).
    dtype:
        On-disk storage dtype. The default ``float64`` loses nothing;
        ``float32`` (the opt-in storage mode) halves the footprint while
        tile *computation* stays float64 — only the final store is cast.
    stage:
        When True, tiles assemble at ``<path>.partial`` and
        :meth:`commit` atomically renames the finished file into place —
        ``path`` then either holds a complete artifact or nothing, never
        a half-assembled one. Used by
        :meth:`repro.store.ArtifactStore.memmap_sink`, where ``path`` is
        a canonical content-addressed location other readers trust; the
        default in-place mode is for caller-owned scratch paths.
    """

    #: The result is a memmap: global densifying post-processing (PSD
    #: projection) must be refused, that is the point of this sink.
    in_memory = False

    def __init__(
        self, path: "str | None" = None, *, dtype="float64", stage: bool = False
    ) -> None:
        super().__init__()
        self.path = path
        self.dtype = np.dtype(dtype)
        self.stage = bool(stage)

    def _backing_path(self) -> str:
        return self.path + ".partial" if self.stage else self.path

    def _allocate(self, plan: TilePlan) -> None:
        if self.path is None:
            fd, self.path = tempfile.mkstemp(suffix=".npy", prefix="gram-")
            os.close(fd)
        else:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
        if plan.n_rows == 0 or plan.n_cols == 0:
            # mmap cannot map zero bytes; an empty plan degrades to a tiny
            # in-memory array with the same dtype and shape semantics.
            self.matrix = np.zeros(plan.shape, dtype=self.dtype)
            return
        self.matrix = np.lib.format.open_memmap(
            self._backing_path(), mode="w+", dtype=self.dtype, shape=plan.shape
        )

    def finalize(self) -> np.ndarray:
        if self.plan is None:
            raise KernelError("MemmapSink: finalize() before open()")
        if isinstance(self.matrix, np.memmap):
            self.matrix.flush()
        return self.matrix

    def commit(self) -> None:
        """Publish a staged assembly (no-op for in-place mode).

        The rename keeps the already-returned memmap valid — it maps the
        inode, not the name."""
        if self.plan is None or not self.stage:
            return
        if isinstance(self.matrix, np.memmap):
            self.matrix.flush()
            os.replace(self._backing_path(), self.path)
        else:  # empty-plan in-memory fallback: write the tiny array out
            with open(self.path, "wb") as f:
                np.save(f, self.matrix, allow_pickle=False)
