"""Parallel backend: symmetric block tiles fanned out over worker processes.

The same block-tiled schedule as the batched backend, but tile pairs are
submitted to a :class:`concurrent.futures.ProcessPoolExecutor` so the
per-tile ``block_values`` calls (batched ``eigvalsh`` stacks, or the
pure-Python fallback loop) run on every available core. Each task ships
only the kernel object and the two state slices it needs, so the pickling
cost grows with the tile, not the collection.

The result is identical to the batched backend tile-for-tile — the same
``block_values`` code runs, merely in another process — which is what the
backend-equivalence tests assert. When a pool cannot be created (no
``fork``/``spawn`` available in a sandbox, interpreter shutting down, …)
the engine degrades to in-process execution rather than failing the Gram
computation.
"""

from __future__ import annotations

import os

import numpy as np

from repro.engine.base import (
    GramEngine,
    assemble_symmetric,
    register_engine,
    symmetric_tile_pairs,
    tile_ranges,
)

#: Smaller default tiles than the batched backend: more tasks to balance.
DEFAULT_TILE_SIZE = 32


def _gram_block(kernel, states_a, states_b, diagonal: bool):
    """Module-level worker (must be picklable by ProcessPoolExecutor)."""
    if diagonal:
        return kernel.symmetric_block_values(states_a)
    return kernel.block_values(states_a, states_b)


@register_engine
class ProcessEngine(GramEngine):
    """Block-tiled Gram evaluation across a process pool."""

    name = "process"

    def __init__(
        self,
        *,
        tile_size: int = DEFAULT_TILE_SIZE,
        max_workers: "int | None" = None,
    ) -> None:
        self.tile_size = int(tile_size)
        self.max_workers = max_workers

    def gram(self, kernel, states: list) -> np.ndarray:
        n = len(states)
        matrix = np.zeros((n, n))
        jobs = []
        for rows, cols in symmetric_tile_pairs(n, self.tile_size):
            diagonal = rows == cols
            states_a = states[rows[0] : rows[1]]
            states_b = [] if diagonal else states[cols[0] : cols[1]]
            jobs.append(((rows, cols), (kernel, states_a, states_b, diagonal)))
        for (rows, cols), block in self._run(jobs):
            assemble_symmetric(matrix, rows, cols, block)
        return matrix

    def cross_gram(self, kernel, states_a: list, states_b: list) -> np.ndarray:
        matrix = np.zeros((len(states_a), len(states_b)))
        jobs = []
        for rows in tile_ranges(len(states_a), self.tile_size):
            for cols in tile_ranges(len(states_b), self.tile_size):
                slice_a = states_a[rows[0] : rows[1]]
                slice_b = states_b[cols[0] : cols[1]]
                jobs.append(((rows, cols), (kernel, slice_a, slice_b, False)))
        for ((r0, r1), (c0, c1)), block in self._run(jobs):
            matrix[r0:r1, c0:c1] = block
        return matrix

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _worker_count(self, n_jobs: int) -> int:
        limit = self.max_workers or os.cpu_count() or 1
        return max(1, min(int(limit), n_jobs))

    def _run(self, jobs):
        """Yield ``(key, block ndarray)`` for every submitted tile job.

        Only pool *setup* (executor creation / task submission) falls back
        to in-process execution — that is where restricted environments
        without ``fork``/``spawn`` fail. Once tasks are in flight, worker
        errors (kernel bugs, a broken pool) propagate to the caller
        instead of being masked by a silent full serial recompute.
        """
        if not jobs:
            return
        workers = self._worker_count(len(jobs))
        pool = None
        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=workers)
            futures = [
                (key, pool.submit(_gram_block, *args)) for key, args in jobs
            ]
        except (ImportError, OSError, PermissionError, RuntimeError):
            if pool is not None:
                pool.shutdown(wait=False)
            for key, args in jobs:
                yield key, np.asarray(_gram_block(*args), dtype=float)
            return
        try:
            for key, future in futures:
                yield key, np.asarray(future.result(), dtype=float)
        finally:
            pool.shutdown(wait=True)
