"""Parallel backend: tiles of the shared schedule fanned out over workers.

The same tile plan as the batched backend, but tile jobs are submitted to
a :class:`concurrent.futures.ProcessPoolExecutor` so the per-tile
``block_values`` calls (batched ``eigvalsh`` stacks, or the pure-Python
fallback loop) run on every available core. Each task ships only the
kernel object and the two state slices it needs, so the pickling cost
grows with the tile, not the collection.

The result is identical to the batched backend tile-for-tile — the same
``block_values`` code runs, merely in another process — which is what the
backend-equivalence tests assert. When a pool cannot be created (no
``fork``/``spawn`` available in a sandbox, interpreter shutting down, …)
the engine degrades to in-process execution rather than failing the Gram
computation, emitting a :class:`RuntimeWarning` so the lost parallelism
is visible. The pool itself is created and shut down deterministically
within each tile stream, on every exit path.
"""

from __future__ import annotations

import itertools
import os
import warnings
from collections import deque

import numpy as np

try:
    from concurrent.futures import ProcessPoolExecutor
except ImportError:  # pragma: no cover - interpreter without _multiprocessing
    # WASM/pyodide-style builds: keep the module importable so the serial
    # and batched backends still work; run_tiles degrades in-process.
    ProcessPoolExecutor = None

from repro.backend import policy_scope, scoped_policy
from repro.engine.base import GramEngine, register_engine

#: Smaller default tiles than the batched backend: more tasks to balance.
DEFAULT_TILE_SIZE = 32


def _gram_block(kernel, states_a, states_b, diagonal: bool, policy=None):
    """Module-level worker (must be picklable by ProcessPoolExecutor).

    ``policy`` ships the parent's compute policy into the worker — the
    parent's :func:`~repro.backend.policy_scope` is thread-local and does
    not cross the process boundary. ``None`` (the in-process paths) is a
    no-op scope: the ambient policy shows through.
    """
    with policy_scope(policy):
        if diagonal:
            return kernel.symmetric_block_values(states_a)
        return kernel.block_values(states_a, states_b)


@register_engine
class ProcessEngine(GramEngine):
    """Block-tiled Gram evaluation across a process pool."""

    name = "process"

    default_tile = DEFAULT_TILE_SIZE

    def __init__(
        self,
        *,
        tile_size: "int | None" = None,
        max_workers: "int | None" = None,
        policy=None,
    ) -> None:
        super().__init__(tile_size=tile_size, policy=policy)
        self.max_workers = max_workers

    def compute_tile(
        self, kernel, states_a: list, states_b: list, diagonal: bool
    ) -> np.ndarray:
        # The in-process mathematics (used by the pool-less degradation
        # path) is exactly what a worker runs remotely.
        return np.asarray(_gram_block(kernel, states_a, states_b, diagonal))

    # ------------------------------------------------------------------ #
    # Scheduling override: fan tiles out to a worker pool
    # ------------------------------------------------------------------ #

    #: Submission window per worker: enough look-ahead to keep every core
    #: busy while bounding in-flight jobs (and their pickled state slices)
    #: to O(workers), not O(N²/tile²).
    _WINDOW_PER_WORKER = 4

    def run_tiles(self, jobs, consume) -> None:
        """Call ``consume(key, block ndarray)`` for every tile job.

        ``jobs`` is consumed lazily with a bounded submission window
        (``workers × 4`` tasks in flight), so neither the schedule nor
        the results are ever all materialised at once — at any moment the
        process holds O(workers) pickled state slices and one finished
        block, which is what lets an out-of-core sink keep peak memory at
        one tile. The pool is created, drained and shut down entirely
        inside this frame. Pushing the assembly in — instead of yielding
        results out of a generator — is what makes the pool lifecycle
        deterministic: a generator's ``finally`` only runs when the
        consumer exhausts or closes it, so an exception raised
        mid-assembly (or an abandoned iteration) used to leave worker
        processes alive until GC. Here every exit path, including a
        ``consume`` or worker exception, reaps the pool first.

        Only pool *setup* (executor creation / first-window submission)
        falls back to in-process execution — that is where restricted
        environments without ``fork``/``spawn`` fail — and the
        degradation is announced with a :class:`RuntimeWarning` so users
        notice they lost parallelism. Once tasks are in flight, worker
        errors (kernel bugs, a broken pool) propagate to the caller
        instead of being masked by a silent full serial recompute.
        """
        jobs = iter(jobs)
        # Capture the effective policy here (self.policy if set, else any
        # enclosing scope's): worker processes can't see the parent's
        # thread-local scope, so it rides along with each submitted task.
        policy = scoped_policy()
        limit = max(1, int(self.max_workers or os.cpu_count() or 1))
        # Buffer up to `limit` jobs before creating the pool, so tiny
        # plans don't spawn more workers than they have tiles.
        head = list(itertools.islice(jobs, limit))
        if not head:
            return
        remaining = itertools.chain(head, jobs)
        if ProcessPoolExecutor is None:
            self._run_in_process(
                remaining,
                consume,
                ImportError("concurrent.futures has no process pools"),
            )
            return
        workers = min(limit, len(head))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (ImportError, OSError, PermissionError, RuntimeError) as exc:
            self._run_in_process(remaining, consume, exc)
            return
        window: deque = deque()
        depth = workers * self._WINDOW_PER_WORKER
        first_batch = list(itertools.islice(remaining, depth))
        try:
            for key, args in first_batch:
                window.append((key, pool.submit(_gram_block, *args, policy)))
        except (OSError, PermissionError, RuntimeError) as exc:
            # First-window submission failed: nothing has been consumed
            # yet, so the whole stream — including the jobs whose futures
            # were cancelled — degrades in-process; consume() still sees
            # each tile exactly once.
            pool.shutdown(wait=False, cancel_futures=True)
            self._run_in_process(
                itertools.chain(first_batch, remaining), consume, exc
            )
            return
        try:
            while window:
                key, future = window.popleft()
                consume(key, np.asarray(future.result(), dtype=float))
                for next_key, next_args in itertools.islice(remaining, 1):
                    window.append(
                        (next_key, pool.submit(_gram_block, *next_args, policy))
                    )
        finally:
            # Runs whether the drain completed or a worker raised: pending
            # tiles are cancelled and the workers reaped before the caller
            # sees either the results or the exception.
            pool.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _run_in_process(jobs, consume, cause: BaseException) -> None:
        """Pool-less fallback, announced so the lost parallelism is visible."""
        warnings.warn(
            f"ProcessEngine could not start a worker pool "
            f"({type(cause).__name__}: {cause}); degrading to in-process "
            f"execution — Gram results are unchanged but no parallel "
            f"speedup applies",
            RuntimeWarning,
            stacklevel=3,
        )
        for key, args in jobs:
            consume(key, np.asarray(_gram_block(*args), dtype=float))
