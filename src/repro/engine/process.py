"""Parallel backend: symmetric block tiles fanned out over worker processes.

The same block-tiled schedule as the batched backend, but tile pairs are
submitted to a :class:`concurrent.futures.ProcessPoolExecutor` so the
per-tile ``block_values`` calls (batched ``eigvalsh`` stacks, or the
pure-Python fallback loop) run on every available core. Each task ships
only the kernel object and the two state slices it needs, so the pickling
cost grows with the tile, not the collection.

The result is identical to the batched backend tile-for-tile — the same
``block_values`` code runs, merely in another process — which is what the
backend-equivalence tests assert. When a pool cannot be created (no
``fork``/``spawn`` available in a sandbox, interpreter shutting down, …)
the engine degrades to in-process execution rather than failing the Gram
computation, emitting a :class:`RuntimeWarning` so the lost parallelism
is visible. The pool itself is created and shut down deterministically
within each ``gram``/``cross_gram`` call, on every exit path.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

try:
    from concurrent.futures import ProcessPoolExecutor
except ImportError:  # pragma: no cover - interpreter without _multiprocessing
    # WASM/pyodide-style builds: keep the module importable so the serial
    # and batched backends still work; _run degrades in-process.
    ProcessPoolExecutor = None

from repro.engine.base import (
    GramEngine,
    assemble_symmetric,
    register_engine,
    symmetric_tile_pairs,
    tile_ranges,
)

#: Smaller default tiles than the batched backend: more tasks to balance.
DEFAULT_TILE_SIZE = 32


def _gram_block(kernel, states_a, states_b, diagonal: bool):
    """Module-level worker (must be picklable by ProcessPoolExecutor)."""
    if diagonal:
        return kernel.symmetric_block_values(states_a)
    return kernel.block_values(states_a, states_b)


@register_engine
class ProcessEngine(GramEngine):
    """Block-tiled Gram evaluation across a process pool."""

    name = "process"

    def __init__(
        self,
        *,
        tile_size: int = DEFAULT_TILE_SIZE,
        max_workers: "int | None" = None,
    ) -> None:
        self.tile_size = int(tile_size)
        self.max_workers = max_workers

    def gram(self, kernel, states: list) -> np.ndarray:
        n = len(states)
        matrix = np.zeros((n, n))
        jobs = []
        for rows, cols in symmetric_tile_pairs(n, self.tile_size):
            diagonal = rows == cols
            states_a = states[rows[0] : rows[1]]
            states_b = [] if diagonal else states[cols[0] : cols[1]]
            jobs.append(((rows, cols), (kernel, states_a, states_b, diagonal)))

        def place(key, block):
            assemble_symmetric(matrix, key[0], key[1], block)

        self._run(jobs, place)
        return matrix

    def cross_gram(self, kernel, states_a: list, states_b: list) -> np.ndarray:
        matrix = np.zeros((len(states_a), len(states_b)))
        jobs = []
        for rows in tile_ranges(len(states_a), self.tile_size):
            for cols in tile_ranges(len(states_b), self.tile_size):
                slice_a = states_a[rows[0] : rows[1]]
                slice_b = states_b[cols[0] : cols[1]]
                jobs.append(((rows, cols), (kernel, slice_a, slice_b, False)))

        def place(key, block):
            (r0, r1), (c0, c1) = key
            matrix[r0:r1, c0:c1] = block

        self._run(jobs, place)
        return matrix

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _worker_count(self, n_jobs: int) -> int:
        limit = self.max_workers or os.cpu_count() or 1
        return max(1, min(int(limit), n_jobs))

    def _run(self, jobs, consume) -> None:
        """Call ``consume(key, block ndarray)`` for every tile job.

        Results stream into ``consume`` as futures are drained (tiles are
        never all materialised at once), and the pool is created, drained
        and shut down entirely inside this frame. Pushing the assembly in
        — instead of yielding results out of a generator — is what makes
        the pool lifecycle deterministic: a generator's ``finally`` only
        runs when the consumer exhausts or closes it, so an exception
        raised mid-assembly (or an abandoned iteration) used to leave
        worker processes alive until GC. Here every exit path, including
        a ``consume`` or worker exception, reaps the pool first.

        Only pool *setup* (executor creation / task submission) falls back
        to in-process execution — that is where restricted environments
        without ``fork``/``spawn`` fail — and the degradation is announced
        with a :class:`RuntimeWarning` so users notice they lost
        parallelism. Once tasks are in flight, worker errors (kernel bugs,
        a broken pool) propagate to the caller instead of being masked by
        a silent full serial recompute.
        """
        if not jobs:
            return
        if ProcessPoolExecutor is None:
            self._run_in_process(
                jobs, consume, ImportError("concurrent.futures has no process pools")
            )
            return
        workers = self._worker_count(len(jobs))
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (ImportError, OSError, PermissionError, RuntimeError) as exc:
            self._run_in_process(jobs, consume, exc)
            return
        try:
            futures = [
                (key, pool.submit(_gram_block, *args)) for key, args in jobs
            ]
        except (OSError, PermissionError, RuntimeError) as exc:
            pool.shutdown(wait=False, cancel_futures=True)
            self._run_in_process(jobs, consume, exc)
            return
        try:
            for key, future in futures:
                consume(key, np.asarray(future.result(), dtype=float))
        finally:
            # Runs whether the drain completed or a worker raised: pending
            # tiles are cancelled and the workers reaped before the caller
            # sees either the results or the exception.
            pool.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _run_in_process(jobs, consume, cause: BaseException) -> None:
        """Pool-less fallback, announced so the lost parallelism is visible."""
        warnings.warn(
            f"ProcessEngine could not start a worker pool "
            f"({type(cause).__name__}: {cause}); degrading to in-process "
            f"execution — Gram results are unchanged but no parallel "
            f"speedup applies",
            RuntimeWarning,
            stacklevel=3,
        )
        for key, args in jobs:
            consume(key, np.asarray(_gram_block(*args), dtype=float))
