"""Vectorized backend: tile the Gram and evaluate tiles via ``block_values``.

The collection is cut into contiguous index tiles; for every tile pair in
the upper triangle the engine asks the kernel for the whole rectangular
block at once. Kernels that override
:meth:`~repro.kernels.base.PairwiseKernel.block_values` (the QJSD family)
answer with batched ``eigvalsh`` / array arithmetic over ``(B, m, m)``
stacks; kernels that don't, fall back to the base-class loop, so this
backend is *always* safe to select — it degrades to serial scheduling
with bounded-size blocks.

Tiling bounds peak memory: a tile pair materialises at most
``tile_size**2`` mixed states at a time regardless of collection size
(vectorized kernels additionally chunk internally, see
``repro.kernels.haqjsk``).
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import (
    GramEngine,
    assemble_symmetric,
    register_engine,
    symmetric_tile_pairs,
    tile_ranges,
)

#: Default tile edge; 64x64 tiles = at most 4096 pairs per batched call.
DEFAULT_TILE_SIZE = 64


@register_engine
class BatchedEngine(GramEngine):
    """Symmetric block-tiled evaluation through ``kernel.block_values``."""

    name = "batched"

    def __init__(self, *, tile_size: int = DEFAULT_TILE_SIZE) -> None:
        self.tile_size = int(tile_size)

    def gram(self, kernel, states: list) -> np.ndarray:
        n = len(states)
        matrix = np.zeros((n, n))
        for rows, cols in symmetric_tile_pairs(n, self.tile_size):
            if rows == cols:
                block = kernel.symmetric_block_values(states[rows[0] : rows[1]])
            else:
                block = kernel.block_values(
                    states[rows[0] : rows[1]], states[cols[0] : cols[1]]
                )
            assemble_symmetric(matrix, rows, cols, np.asarray(block, dtype=float))
        return matrix

    def cross_gram(self, kernel, states_a: list, states_b: list) -> np.ndarray:
        matrix = np.zeros((len(states_a), len(states_b)))
        for r0, r1 in tile_ranges(len(states_a), self.tile_size):
            for c0, c1 in tile_ranges(len(states_b), self.tile_size):
                matrix[r0:r1, c0:c1] = np.asarray(
                    kernel.block_values(states_a[r0:r1], states_b[c0:c1]),
                    dtype=float,
                )
        return matrix
