"""Vectorized backend: evaluate whole tiles via ``kernel.block_values``.

For every tile of the shared schedule the engine asks the kernel for the
whole rectangular block at once. Kernels that override
:meth:`~repro.kernels.base.PairwiseKernel.block_values` (the QJSD family)
answer with batched ``eigvalsh`` / array arithmetic over ``(B, m, m)``
stacks; kernels that don't, fall back to the base-class loop, so this
backend is *always* safe to select — it degrades to serial scheduling
with bounded-size blocks.

Tiling bounds peak memory: a tile pair materialises at most
``tile_size**2`` mixed states at a time regardless of collection size
(vectorized kernels additionally chunk internally, see
``repro.kernels.haqjsk``), and with an out-of-core sink the assembled
matrix never has to fit in RAM either.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import GramEngine, register_engine

#: Default tile edge; 64x64 tiles = at most 4096 pairs per batched call.
DEFAULT_TILE_SIZE = 64


@register_engine
class BatchedEngine(GramEngine):
    """Block-tiled evaluation through ``kernel.block_values``."""

    name = "batched"

    default_tile = DEFAULT_TILE_SIZE

    def compute_tile(
        self, kernel, states_a: list, states_b: list, diagonal: bool
    ) -> np.ndarray:
        if diagonal:
            return np.asarray(kernel.symmetric_block_values(states_a), dtype=float)
        return np.asarray(kernel.block_values(states_a, states_b), dtype=float)
