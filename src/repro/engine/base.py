"""Engine abstraction: how a pairwise Gram matrix gets scheduled.

A :class:`GramEngine` executes a :class:`~repro.engine.tiles.TilePlan`
over a :class:`~repro.kernels.base.PairwiseKernel`'s prepared per-graph
states, streaming finished ``(rows, cols, block)`` tiles into a
:class:`~repro.engine.tiles.GramSink`. The *scheduler* — plan
construction, resume filtering through ``sink.has_tile``, placement and
symmetry mirroring — lives here in the base class; backends differ only
in **how one tile is computed** (:meth:`GramEngine.compute_tile`) and,
for the process backend, **where** (:meth:`GramEngine.run_tiles` fans
tiles out to a worker pool). The kernel owns the *mathematics* via the
small protocol below; engines never import concrete kernels:

``kernel.pair_value(state_a, state_b) -> float``
    Scalar kernel value (the serial path).
``kernel.block_values(states_a, states_b) -> (len_a, len_b) ndarray``
    A rectangular block of kernel values; vectorized kernels override it.
``kernel.symmetric_block_values(states) -> (n, n) ndarray``
    A symmetric diagonal block, computed from the upper triangle so every
    backend agrees bit-for-bit on symmetry.

Backends register themselves in :data:`ENGINES` and are resolved by name
through :func:`resolve_engine`; ``None`` falls back to the process-wide
default (the ``REPRO_GRAM_ENGINE`` environment variable, else
``"batched"``). Tile sizes resolve the same way: explicit constructor
argument > ``REPRO_GRAM_TILE`` > per-backend default.
"""

from __future__ import annotations

import abc
import os

import numpy as np

from repro.backend import ComputePolicy, policy_scope
from repro.engine.tiles import DenseSink, GramSink, TilePlan, default_tile_size
from repro.errors import KernelError

#: Hard floor for tile sizes — degenerate tiling is always a bug.
_MIN_TILE = 1


class GramEngine(abc.ABC):
    """Strategy object computing Gram matrices from prepared states.

    The concrete :meth:`gram` / :meth:`cross_gram` entry points build a
    :class:`TilePlan` and delegate to :meth:`execute`, the shared
    scheduler. Subclasses implement :meth:`compute_tile` (the per-tile
    mathematics dispatch) and may override :meth:`run_tiles` (where tiles
    run — in-process by default, a worker pool for the process backend).
    """

    #: Registry key; subclasses set it and appear in :data:`ENGINES`.
    name: str = "engine"

    #: Per-backend tile-size fallback (overridden by ``REPRO_GRAM_TILE``
    #: and by an explicit ``tile_size=`` constructor argument).
    default_tile: int = 64

    def __init__(
        self,
        *,
        tile_size: "int | None" = None,
        policy: "ComputePolicy | None" = None,
    ) -> None:
        self.tile_size = None if tile_size is None else int(tile_size)
        #: Compute policy installed around the tile stream (``None`` lets
        #: the ambient :func:`repro.backend.active_policy` show through).
        self.policy = policy

    def resolved_tile_size(self) -> int:
        """Explicit tile size > ``REPRO_GRAM_TILE`` > backend default."""
        if self.tile_size is not None:
            return max(self.tile_size, _MIN_TILE)
        return default_tile_size(self.default_tile)

    # ------------------------------------------------------------------ #
    # Entry points (shared by every backend)
    # ------------------------------------------------------------------ #

    def gram(self, kernel, states: list, *, sink: "GramSink | None" = None):
        """Symmetric ``(n, n)`` Gram over one prepared collection.

        With a ``sink`` the result is whatever the sink materialises
        (ndarray, memmap); without one, a fresh in-memory ndarray.
        """
        plan = TilePlan.gram(len(states), self.resolved_tile_size())
        return self.execute(kernel, plan, states, states, sink=sink)

    def cross_gram(
        self, kernel, states_a: list, states_b: list,
        *, sink: "GramSink | None" = None,
    ):
        """Rectangular ``(len_a, len_b)`` Gram between two state lists."""
        plan = TilePlan.cross(
            len(states_a), len(states_b), self.resolved_tile_size()
        )
        return self.execute(kernel, plan, states_a, states_b, sink=sink)

    def execute(
        self,
        kernel,
        plan: TilePlan,
        states_a: list,
        states_b: list,
        *,
        sink: "GramSink | None" = None,
    ):
        """The shared scheduler: stream ``plan``'s tiles into ``sink``.

        Tiles the sink already holds (``has_tile`` — the resume hook of
        the checkpoint layer) are skipped *before* any kernel work runs,
        so a resumed computation pays only for the unfinished tiles.
        Symmetric plans enumerate upper-triangle tiles only; the sink
        mirrors, so results are symmetric by construction on every
        backend.
        """
        sink = DenseSink() if sink is None else sink
        sink.open(plan)

        def jobs():
            # Lazy on purpose: at large N the schedule holds O(N²/tile²)
            # entries, and materialising every state-slice pair up front
            # would cost O(N²/tile) memory — defeating the out-of-core
            # sinks this scheduler exists to feed. Backends consume the
            # stream with bounded look-ahead (the process pool keeps a
            # fixed submission window in flight).
            for rows, cols in plan.tiles():
                if sink.has_tile(rows, cols):
                    continue
                diagonal = plan.is_diagonal(rows, cols)
                slice_a = states_a[rows[0] : rows[1]]
                slice_b = [] if diagonal else states_b[cols[0] : cols[1]]
                yield (rows, cols), (kernel, slice_a, slice_b, diagonal)

        def place(key, block):
            # Accumulation point: blocks land in float64 regardless of the
            # policy's device precision, so low-precision round-off stays
            # per-entry and never compounds across tiles.
            sink.write(key[0], key[1], np.asarray(block, dtype=float))

        with policy_scope(self.policy):
            self.run_tiles(jobs(), place)
        return sink.finalize()

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def compute_tile(
        self, kernel, states_a: list, states_b: list, diagonal: bool
    ) -> np.ndarray:
        """One tile's values — the only mathematics a backend chooses.

        ``diagonal`` tiles pass the row slice only (``states_b`` is
        empty) and must return a symmetric block computed from the upper
        triangle, so every backend agrees on symmetry exactly.
        """

    def run_tiles(self, jobs, consume) -> None:
        """Run ``(key, compute_tile-args)`` jobs, feeding each finished
        block to ``consume(key, block)``. ``jobs`` may be a lazy iterable
        (the scheduler streams it); one job is in flight at a time here —
        the process backend overrides this with worker-pool fan-out."""
        for key, args in jobs:
            consume(key, self.compute_tile(*args))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def tile_ranges(n: int, tile_size: int) -> "list[tuple[int, int]]":
    """Contiguous ``[start, stop)`` ranges covering ``range(n)``.

    Contiguity (and ascending order) matters: symmetric engines compute
    only tile pairs with ``row_tile <= col_tile``, so within any
    off-diagonal tile every row index is strictly below every column
    index — exactly the upper triangle the serial loop evaluates.
    """
    if n < 0:
        raise KernelError(f"cannot tile a negative range ({n})")
    size = max(int(tile_size), _MIN_TILE)
    return [(start, min(start + size, n)) for start in range(0, n, size)]


def symmetric_tile_pairs(n: int, tile_size: int):
    """Yield ``(rows, cols)`` range pairs covering the upper triangle."""
    ranges = tile_ranges(n, tile_size)
    for i, rows in enumerate(ranges):
        for cols in ranges[i:]:
            yield rows, cols


# Mirroring of symmetric off-diagonal tiles lives in GramSink._place
# (repro.engine.tiles) — sinks assemble matrices, engines only schedule.


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

#: name -> engine factory (a zero-argument callable / class).
ENGINES: "dict[str, type]" = {}

#: Environment variable selecting the process-wide default backend.
ENGINE_ENV_VAR = "REPRO_GRAM_ENGINE"

#: Backend used when nothing else is specified.
FALLBACK_ENGINE = "batched"


def register_engine(cls):
    """Class decorator adding an engine to the registry under ``cls.name``."""
    ENGINES[cls.name] = cls
    return cls


def available_engines() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(ENGINES))


def default_engine_name() -> str:
    """The process-wide default backend (env override, else batched)."""
    name = os.environ.get(ENGINE_ENV_VAR, "").strip()
    return name or FALLBACK_ENGINE


def resolve_engine(engine: "GramEngine | str | None" = None) -> GramEngine:
    """Resolve an engine spec (instance, name, or ``None``) to an instance.

    ``None`` selects :func:`default_engine_name`. Unknown names raise a
    :class:`~repro.errors.KernelError` listing the available backends, so a
    typo in ``REPRO_GRAM_ENGINE`` or a config file fails loudly.
    """
    if isinstance(engine, GramEngine):
        return engine
    if engine is None:
        engine = default_engine_name()
    if not isinstance(engine, str):
        raise KernelError(
            f"engine must be a GramEngine, a backend name, or None; "
            f"got {type(engine).__name__}"
        )
    try:
        factory = ENGINES[engine]
    except KeyError:
        raise KernelError(
            f"unknown gram engine {engine!r}; available: "
            f"{', '.join(available_engines())}"
        ) from None
    return factory()
