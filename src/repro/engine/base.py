"""Engine abstraction: how a pairwise Gram matrix gets scheduled.

A :class:`GramEngine` turns a :class:`~repro.kernels.base.PairwiseKernel`
plus its prepared per-graph states into a (square or rectangular) Gram
matrix. The engine owns *scheduling* — loop order, tiling, parallel
fan-out — while the kernel owns the *mathematics* via ``pair_value`` /
``block_values``. Engines therefore never import concrete kernels; they
only rely on the small protocol below:

``kernel.pair_value(state_a, state_b) -> float``
    Scalar kernel value (the serial path).
``kernel.block_values(states_a, states_b) -> (len_a, len_b) ndarray``
    A rectangular block of kernel values; vectorized kernels override it.
``kernel.symmetric_block_values(states) -> (n, n) ndarray``
    A symmetric diagonal block, computed from the upper triangle so every
    backend agrees bit-for-bit on symmetry.

Backends register themselves in :data:`ENGINES` and are resolved by name
through :func:`resolve_engine`; ``None`` falls back to the process-wide
default (the ``REPRO_GRAM_ENGINE`` environment variable, else
``"batched"``).
"""

from __future__ import annotations

import abc
import os

import numpy as np

from repro.errors import KernelError

#: Hard floor for tile sizes — degenerate tiling is always a bug.
_MIN_TILE = 1


class GramEngine(abc.ABC):
    """Strategy object computing Gram matrices from prepared states."""

    #: Registry key; subclasses set it and appear in :data:`ENGINES`.
    name: str = "engine"

    @abc.abstractmethod
    def gram(self, kernel, states: list) -> np.ndarray:
        """Symmetric ``(n, n)`` Gram over one prepared collection."""

    @abc.abstractmethod
    def cross_gram(self, kernel, states_a: list, states_b: list) -> np.ndarray:
        """Rectangular ``(len_a, len_b)`` Gram between two state lists."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def tile_ranges(n: int, tile_size: int) -> "list[tuple[int, int]]":
    """Contiguous ``[start, stop)`` ranges covering ``range(n)``.

    Contiguity (and ascending order) matters: symmetric engines compute
    only tile pairs with ``row_tile <= col_tile``, so within any
    off-diagonal tile every row index is strictly below every column
    index — exactly the upper triangle the serial loop evaluates.
    """
    if n < 0:
        raise KernelError(f"cannot tile a negative range ({n})")
    size = max(int(tile_size), _MIN_TILE)
    return [(start, min(start + size, n)) for start in range(0, n, size)]


def symmetric_tile_pairs(n: int, tile_size: int):
    """Yield ``(rows, cols)`` range pairs covering the upper triangle."""
    ranges = tile_ranges(n, tile_size)
    for i, rows in enumerate(ranges):
        for cols in ranges[i:]:
            yield rows, cols


def assemble_symmetric(matrix: np.ndarray, rows, cols, block: np.ndarray) -> None:
    """Place ``block`` at ``[rows, cols]`` and mirror it across the diagonal."""
    r0, r1 = rows
    c0, c1 = cols
    matrix[r0:r1, c0:c1] = block
    if (r0, r1) != (c0, c1):
        matrix[c0:c1, r0:r1] = block.T


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

#: name -> engine factory (a zero-argument callable / class).
ENGINES: "dict[str, type]" = {}

#: Environment variable selecting the process-wide default backend.
ENGINE_ENV_VAR = "REPRO_GRAM_ENGINE"

#: Backend used when nothing else is specified.
FALLBACK_ENGINE = "batched"


def register_engine(cls):
    """Class decorator adding an engine to the registry under ``cls.name``."""
    ENGINES[cls.name] = cls
    return cls


def available_engines() -> "tuple[str, ...]":
    """Registered backend names, sorted."""
    return tuple(sorted(ENGINES))


def default_engine_name() -> str:
    """The process-wide default backend (env override, else batched)."""
    name = os.environ.get(ENGINE_ENV_VAR, "").strip()
    return name or FALLBACK_ENGINE


def resolve_engine(engine: "GramEngine | str | None" = None) -> GramEngine:
    """Resolve an engine spec (instance, name, or ``None``) to an instance.

    ``None`` selects :func:`default_engine_name`. Unknown names raise a
    :class:`~repro.errors.KernelError` listing the available backends, so a
    typo in ``REPRO_GRAM_ENGINE`` or a config file fails loudly.
    """
    if isinstance(engine, GramEngine):
        return engine
    if engine is None:
        engine = default_engine_name()
    if not isinstance(engine, str):
        raise KernelError(
            f"engine must be a GramEngine, a backend name, or None; "
            f"got {type(engine).__name__}"
        )
    try:
        factory = ENGINES[engine]
    except KeyError:
        raise KernelError(
            f"unknown gram engine {engine!r}; available: "
            f"{', '.join(available_engines())}"
        ) from None
    return factory()
