"""The reference backend: one ``pair_value`` call per pair.

This is value-for-value the scheduling the kernel layer used before the
engine subsystem existed — every cell of a tile comes from its own
``pair_value`` call, diagonal tiles evaluate the upper triangle and
mirror. It never calls ``block_values``, so it stays the ground truth the
vectorized and parallel backends are tested against; the shared base
scheduler only changes *which order* cells are visited (tile by tile),
never their values.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import GramEngine, register_engine


@register_engine
class SerialEngine(GramEngine):
    """Pure-Python pairwise loop; the historical (and slowest) path."""

    name = "serial"

    #: Large tiles: serial tiling exists only to bound sink writes, the
    #: per-pair loop cost is identical at any tile size.
    default_tile = 128

    def compute_tile(
        self, kernel, states_a: list, states_b: list, diagonal: bool
    ) -> np.ndarray:
        if diagonal:
            n = len(states_a)
            block = np.zeros((n, n))
            for i in range(n):
                for j in range(i, n):
                    value = float(kernel.pair_value(states_a[i], states_a[j]))
                    block[i, j] = value
                    block[j, i] = value
            return block
        block = np.zeros((len(states_a), len(states_b)))
        for i, state_a in enumerate(states_a):
            for j, state_b in enumerate(states_b):
                block[i, j] = float(kernel.pair_value(state_a, state_b))
        return block
