"""The reference backend: one ``pair_value`` call per pair.

This is byte-for-byte the scheduling the kernel layer used before the
engine subsystem existed — an upper-triangular double loop mirrored into
the lower triangle. It never calls ``block_values``, so it stays the
ground truth the vectorized and parallel backends are tested against.
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import GramEngine, register_engine


@register_engine
class SerialEngine(GramEngine):
    """Pure-Python pairwise loop; the historical (and slowest) path."""

    name = "serial"

    def gram(self, kernel, states: list) -> np.ndarray:
        n = len(states)
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i, n):
                value = float(kernel.pair_value(states[i], states[j]))
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix

    def cross_gram(self, kernel, states_a: list, states_b: list) -> np.ndarray:
        matrix = np.zeros((len(states_a), len(states_b)))
        for i, state_a in enumerate(states_a):
            for j, state_b in enumerate(states_b):
                matrix[i, j] = float(kernel.pair_value(state_a, state_b))
        return matrix
