"""Pluggable Gram-computation engines for the pairwise kernel family.

The paper's Section III-D complexity bound ``O(N^2 n^3)`` is dominated by
the pair-evaluation stage: every QJSD-family kernel value needs a
mixed-state eigendecomposition, and a naive Gram evaluates ``N(N+1)/2``
of them one Python call at a time. Because transitive alignment makes
every prepared state a *fixed-size* matrix, the whole stage is batchable
— and independently of batching, the symmetric Gram tiles cleanly across
worker processes. This subsystem factors that scheduling decision out of
the kernels into three interchangeable backends:

``serial``
    The historical reference path — an upper-triangular double loop over
    ``kernel.pair_value``. Slowest, simplest, the equivalence baseline.
``batched``  *(default)*
    Symmetric block tiling through ``kernel.block_values``. Kernels that
    implement a vectorized block (HAQJSK(A)/(D) and the attributed
    variants, QJSK unaligned/aligned, JTQK) evaluate whole ``(B, m, m)``
    stacks with one batched ``eigvalsh``; everything else transparently
    falls back to the pairwise loop per tile.
``process``
    The same tiling fanned out over a
    :class:`concurrent.futures.ProcessPoolExecutor`; each tile runs
    ``block_values`` on another core. Degrades gracefully to in-process
    execution where process pools are unavailable.

Selecting a backend
-------------------
The preferred selector is an :class:`~repro.api.ExecutionContext` — one
frozen object carrying the backend (a name, a configured
:class:`GramEngine` instance, or ``None`` for the default), the tile
size, and the rest of the execution policy, threaded as ``ctx=``::

    from repro.api import ExecutionContext

    kernel.gram(graphs, ctx=ExecutionContext(engine="process"))
    kernel.cross_gram(graphs_a, graphs_b,
                      ctx=ExecutionContext(engine="batched", tile_size=128))
    nystrom_gram(kernel, graphs, n_landmarks=32,
                 ctx=ExecutionContext(engine="batched"))

(The per-call ``engine=`` keyword still works as a deprecated shim.)

A kernel instance can carry a sticky default (``kernel.engine =
"process"``), and the process-wide default is the ``REPRO_GRAM_ENGINE``
environment variable (else ``"batched"``); the experiment harness records
the active backend in every saved report. All three backends agree to
``1e-10`` on every pairwise kernel in the zoo — enforced by
``tests/engine/test_backends.py``.

Tile streams and sinks
----------------------
Every backend runs the *same* tile schedule (the base-class scheduler);
what differs is only how one tile is computed. Finished tiles stream into
a pluggable :class:`GramSink` — :class:`DenseSink` (in-memory, the
default), :class:`MemmapSink` (out-of-core ``np.memmap``, Grams larger
than RAM), or the store layer's
:class:`~repro.store.tiles.CheckpointSink` (persists tiles through an
artifact store so killed runs resume at tile granularity)::

    ctx = ExecutionContext(sink_factory=lambda: MemmapSink("big_gram.npy"))
    kernel.gram(graphs, ctx=ctx)

Tile sizes resolve explicit ``tile_size=`` > ``REPRO_GRAM_TILE`` >
per-backend default (batched 64, process 32, serial 128).
"""

from repro.engine.base import (
    ENGINE_ENV_VAR,
    ENGINES,
    GramEngine,
    available_engines,
    default_engine_name,
    register_engine,
    resolve_engine,
)
from repro.engine.batched import BatchedEngine
from repro.engine.process import ProcessEngine
from repro.engine.serial import SerialEngine
from repro.engine.tiles import (
    TILE_ENV_VAR,
    DenseSink,
    GramSink,
    MemmapSink,
    TilePlan,
    default_tile_size,
)

__all__ = [
    "ENGINE_ENV_VAR",
    "ENGINES",
    "TILE_ENV_VAR",
    "BatchedEngine",
    "DenseSink",
    "GramEngine",
    "GramSink",
    "MemmapSink",
    "ProcessEngine",
    "SerialEngine",
    "TilePlan",
    "available_engines",
    "default_engine_name",
    "default_tile_size",
    "register_engine",
    "resolve_engine",
]
