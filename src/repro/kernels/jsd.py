"""Classical Jensen-Shannon divergence kernel (Bai & Hancock 2013, ref. [43]).

The classical ancestor of the QJSD family: each graph is summarised by the
Shannon entropy of its steady-state random-walk distribution, and

    K(G_p, G_q) = exp(-mu * JSD(P_p, P_q))

with the classical JSD over the padded degree distributions. Kept as an
extra baseline for the ablation benches (quantum vs classical divergence).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.ops import degree_distribution
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel
from repro.quantum.divergence import classical_jensen_shannon_divergence
from repro.utils.validation import check_in_range


@register_kernel("JSDK", aliases=("jsd",))
class JensenShannonKernel(PairwiseKernel):
    """Classical JSD kernel over steady-state degree distributions."""

    name = "JSDK"
    #: Per-graph degree distributions; pair padding only.
    collection_independent = True
    traits = KernelTraits(
        framework="Information Theory",
        positive_definite=False,
        aligned=False,
        transitive=False,
        structure_patterns=("Global (Entropy)",),
        computing_model="Classical",
        captures_local=False,
        captures_global=True,
    )

    def __init__(self, mu: float = 1.0) -> None:
        self.mu = check_in_range(mu, "mu", low=0.0, high=np.inf, low_inclusive=False)

    def prepare(self, graphs: "list[Graph]") -> list:
        return [degree_distribution(g) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        size = max(state_a.shape[0], state_b.shape[0])
        p = np.zeros(size)
        q = np.zeros(size)
        p[: state_a.shape[0]] = np.sort(state_a)[::-1]
        q[: state_b.shape[0]] = np.sort(state_b)[::-1]
        divergence = classical_jensen_shannon_divergence(p, q)
        return float(np.exp(-self.mu * divergence))
