"""Graph-kernel framework: base classes, traits, and Gram-matrix machinery.

Every kernel in Table III/IV is a :class:`GraphKernel`. Kernels either
expose an explicit feature map (:class:`FeatureMapKernel` — WLSK, SPGK,
GCGK, ...) or a pairwise similarity over per-graph prepared states
(:class:`PairwiseKernel` — the QJSD family). Each class carries
:class:`KernelTraits`, the machine-readable version of the paper's Table
I/III property matrix, which the properties experiment verifies empirically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.api.context import resolve_context
from repro.engine.base import GramEngine, resolve_engine, tile_ranges
from repro.engine.tiles import GramSink, TilePlan, stream_tiles
from repro.errors import KernelError
from repro.graphs.graph import Graph
from repro.store.fingerprints import config_fingerprint
from repro.utils.linalg import clip_to_psd


@dataclass(frozen=True)
class KernelTraits:
    """Static kernel properties as tabulated in paper Tables I and III."""

    framework: str = "R-convolution"  # or "Information Theory"
    positive_definite: bool = True
    aligned: bool = False
    transitive: bool = False
    structure_patterns: tuple = ()
    computing_model: str = "Classical"  # or "Quantum Walks"
    hierarchical: bool = False
    captures_local: bool = True
    captures_global: bool = False
    notes: str = ""


class GraphKernel(abc.ABC):
    """Base class: a positive (semi-)definite similarity between graphs.

    Subclasses implement :meth:`_compute_gram`; the public :meth:`gram`
    adds input validation, optional cosine normalisation and optional PSD
    projection (used for the indefinite baselines before the SVM).
    """

    #: Human-readable kernel name (Table IV row label).
    name: str = "kernel"
    #: Static properties; see :class:`KernelTraits`.
    traits: KernelTraits = KernelTraits()
    #: Sticky per-kernel Gram engine (name or :class:`GramEngine`); ``None``
    #: defers to the process default. Only pairwise kernels consult it —
    #: feature-map Grams are a single matmul already.
    engine: "GramEngine | str | None" = None
    #: True when a pair's kernel value depends only on the two graphs, not
    #: on which other graphs share the collection. This is the eligibility
    #: condition for :meth:`gram_extend`: extending a Gram must not
    #: silently change the old entries. Feature-map kernels qualify by
    #: construction; pairwise kernels opt in per class; the HAQJSK family
    #: qualifies only in frozen-prototype mode (see
    #: :meth:`repro.kernels.haqjsk._HAQJSKBase.freeze`).
    collection_independent: bool = False
    #: Appended to the :meth:`gram_extend` refusal message; subclasses with
    #: an eligible mode (frozen HAQJSK) point users at it here.
    _extension_hint: str = ""

    def gram(
        self,
        graphs: "list[Graph]",
        *,
        normalize: "bool | None" = None,
        ensure_psd: "bool | None" = None,
        engine: "GramEngine | str | None" = None,
        sink: "GramSink | None" = None,
        ctx=None,
    ) -> np.ndarray:
        """The full ``N x N`` Gram matrix over ``graphs``.

        Parameters
        ----------
        normalize:
            Apply cosine normalisation ``K_ij / sqrt(K_ii K_jj)``, the
            standard protocol before C-SVM training (default off; a
            context's ``normalize`` policy fills the default in).
        ensure_psd:
            Clip negative Gram eigenvalues to zero. Only needed for the
            indefinite baselines (unaligned/aligned QJSK); the HAQJSK
            kernels are PD by construction.
        ctx:
            An :class:`~repro.api.context.ExecutionContext` carrying the
            execution knobs — backend, tile size, sink factory and the
            normalisation policy — as one value. The preferred form.
        engine:
            *Deprecated* (pass ``ctx=``): Gram-computation backend (see
            :mod:`repro.engine`): a backend name (``"serial"``,
            ``"batched"``, ``"process"``), a :class:`GramEngine`
            instance, or ``None`` for this kernel's sticky default / the
            process-wide default.
        sink:
            *Deprecated* (pass ``ctx=``): destination for the tile
            stream (see :mod:`repro.engine.tiles`): ``None`` keeps
            today's in-memory ndarray; a
            :class:`~repro.engine.tiles.MemmapSink` assembles the Gram
            out of core (bounded peak memory at any ``N``); a
            :class:`~repro.store.tiles.CheckpointSink` additionally
            persists finished tiles so a killed run resumes at tile
            granularity. Raw *kernel values* stream into the sink;
            ``normalize`` is then applied tile-wise in place (works on
            memmaps without densifying), while ``ensure_psd`` — a global
            eigendecomposition — is refused for out-of-core sinks.
        """
        ctx = resolve_context(
            ctx, owner=f"{self.name}.gram", engine=engine, sink=sink
        )
        if ctx is not None and ctx.store is not None:
            # The documented store contract: a context carrying a store
            # makes every Gram content-addressed. store_backed_gram owns
            # that protocol (hit / tile-checkpointed miss / reclamation)
            # and calls back here with the store stripped.
            from repro.store import store_backed_gram

            self._check_graphs(graphs)
            ctx.validate()
            return store_backed_gram(
                self,
                list(graphs),
                ctx.store,
                normalize=ctx.policy(normalize, "normalize", False),
                ensure_psd=ctx.policy(ensure_psd, "ensure_psd", False),
                tile_checkpoint=ctx.tile_checkpoint,
                ctx=ctx.replace(store=None),
            )
        if ctx is not None:
            engine = ctx.engine_argument(self)
            sink = ctx.make_sink()
            normalize = ctx.policy(normalize, "normalize", False)
            ensure_psd = ctx.policy(ensure_psd, "ensure_psd", False)
            ctx.validate(ensure_psd=ensure_psd, sink=sink)
        else:
            normalize = bool(normalize)
            ensure_psd = bool(ensure_psd)
        self._check_graphs(graphs)
        if sink is None:
            matrix = np.asarray(
                self._compute_gram(list(graphs), engine=engine), dtype=float
            )
            n = len(graphs)
            if matrix.shape != (n, n):
                raise KernelError(
                    f"{self.name}: _compute_gram returned shape {matrix.shape}, "
                    f"expected ({n}, {n})"
                )
            matrix = (matrix + matrix.T) / 2.0
            if normalize:
                matrix = normalize_gram(matrix)
            if ensure_psd:
                # One eigendecomposition serves both the PSD check and (when
                # needed) the projection — see clip_to_psd.
                matrix = clip_to_psd(matrix)
            return matrix
        # The ensure_psd × out-of-core-sink refusal already happened in
        # ctx.validate() above (every sink arrives through a context).
        matrix = self._compute_gram_into(list(graphs), sink, engine)
        n = len(graphs)
        if getattr(matrix, "shape", None) != (n, n):
            raise KernelError(
                f"{self.name}: tiled Gram has shape "
                f"{getattr(matrix, 'shape', None)}, expected ({n}, {n})"
            )
        # Tiles arrive symmetric by construction (diagonal tiles mirror
        # their upper triangle, off-diagonals are mirrored by the sink),
        # so the dense path's global (K + Kᵀ)/2 pass has nothing to do.
        if normalize:
            matrix = normalize_gram_inplace_tiled(
                matrix, tile_size=self._resolve_engine(engine).resolved_tile_size()
            )
        if ensure_psd:
            matrix = clip_to_psd(np.asarray(matrix, dtype=float))
        # Post-processing is done: a staged sink may now publish its
        # backing file atomically.
        sink.commit()
        return matrix

    @property
    def streams_tiles(self) -> bool:
        """True when this kernel computes genuinely tile-at-a-time.

        Kernels on the generic dense-replay fallback (the core-variant
        wrappers) accept sinks for API uniformity but recompute the full
        matrix before any tile streams — wrapping them in a
        :class:`~repro.store.tiles.CheckpointSink` would commit tiles
        that can never save recomputation. Checkpointing callers consult
        this to skip the pointless tile I/O.
        """
        return (
            type(self)._compute_gram_into is not GraphKernel._compute_gram_into
        )

    def _compute_gram_into(
        self,
        graphs: "list[Graph]",
        sink: GramSink,
        engine: "GramEngine | str | None",
    ):
        """Subclass hook: stream the raw Gram's tiles into ``sink``.

        The generic fallback computes the dense matrix and replays it as
        tiles — correct for any kernel (the core-variant wrappers override
        ``_compute_gram`` wholesale), though without the bounded-memory
        benefit; the pairwise and feature-map families override this with
        genuinely tile-at-a-time computation.
        """
        matrix = np.asarray(self._compute_gram(graphs, engine=engine), dtype=float)
        matrix = (matrix + matrix.T) / 2.0
        plan = TilePlan.gram(
            len(graphs), self._resolve_engine(engine).resolved_tile_size()
        )
        return replay_tiles(matrix, plan, sink)

    def gram_extend(
        self,
        cached_gram: np.ndarray,
        old_graphs: "list[Graph]",
        new_graphs: "list[Graph]",
        *,
        engine: "GramEngine | str | None" = None,
        store=None,
        ctx=None,
    ) -> np.ndarray:
        """Grow a cached raw Gram by ``ΔN`` new graphs, computing only the
        new ``(N, ΔN)`` cross block and ``(ΔN, ΔN)`` diagonal block.

        ``ctx`` (an :class:`~repro.api.context.ExecutionContext`) is the
        preferred way to select the backend and store; the loose
        ``engine=`` / ``store=`` keywords are deprecated shims.

        ``cached_gram`` must be the *raw* output of
        ``gram(old_graphs, normalize=False, ensure_psd=False)`` (cosine
        normalisation and PSD projection are global operations — apply
        them to the returned matrix, and keep the raw one for further
        extension). The result matches a from-scratch
        ``gram(old_graphs + new_graphs)`` to the backends' 1e-10
        agreement, at ``O(N·ΔN)`` pair evaluations instead of
        ``O((N+ΔN)²)`` — the serving workload of a growing collection
        against a fixed reference set.

        With a ``store`` (:class:`repro.store.ArtifactStore`), the new
        blocks are computed through tile-checkpointing sinks: every
        finished tile commits before the next is computed, so a killed
        extension resumes at tile granularity, and tiles persisted by a
        prior checkpointed run over the same graph slices are reused
        instead of recomputed. (The prior *matrix* is never needed — tile
        keys address slice content directly; see
        :mod:`repro.store.tiles`.)

        Raises a :class:`~repro.errors.KernelError` when this kernel's
        values depend on the whole collection (HAQJSK's prototype system,
        shared-decay random walks, ...): extending such a Gram would
        silently invalidate the cached ``N × N`` block.
        """
        ctx = resolve_context(
            ctx, owner=f"{self.name}.gram_extend", engine=engine, store=store
        )
        if ctx is not None:
            engine = ctx.engine_argument(self)
            store = ctx.store
        self._check_graphs(old_graphs)
        self._check_graphs(new_graphs)
        if not self.collection_independent:
            hint = f" {self._extension_hint}" if self._extension_hint else ""
            raise KernelError(
                f"{self.name}: gram_extend refused — this kernel's values "
                f"depend on the whole collection, so extending would "
                f"silently change the cached entries.{hint}"
            )
        n_old, n_new = len(old_graphs), len(new_graphs)
        cached = np.asarray(cached_gram, dtype=float)
        if cached.shape != (n_old, n_old):
            raise KernelError(
                f"{self.name}: cached_gram has shape {cached.shape}, "
                f"expected ({n_old}, {n_old}) for {n_old} old graphs"
            )
        cross, diagonal = self._extension_blocks(
            list(old_graphs), list(new_graphs), engine, store=store
        )
        cross = np.asarray(cross, dtype=float)
        diagonal = np.asarray(diagonal, dtype=float)
        if cross.shape != (n_old, n_new) or diagonal.shape != (n_new, n_new):
            raise KernelError(
                f"{self.name}: extension blocks have shapes {cross.shape}/"
                f"{diagonal.shape}, expected ({n_old}, {n_new})/"
                f"({n_new}, {n_new})"
            )
        full = np.empty((n_old + n_new, n_old + n_new))
        full[:n_old, :n_old] = (cached + cached.T) / 2.0
        full[:n_old, n_old:] = cross
        full[n_old:, :n_old] = cross.T
        full[n_old:, n_old:] = (diagonal + diagonal.T) / 2.0
        return full

    def _extension_blocks(
        self,
        old_graphs: "list[Graph]",
        new_graphs: "list[Graph]",
        engine: "GramEngine | str | None",
        store=None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Subclass hook: the ``(N, ΔN)`` cross and ``(ΔN, ΔN)`` diagonal
        blocks of the extended Gram. Only called after the
        collection-independence gate in :meth:`gram_extend` passed;
        ``store`` (when given) requests tile-checkpointed computation."""
        raise KernelError(
            f"{self.name}: no incremental Gram path is implemented for "
            f"{type(self).__name__}"
        )

    def fingerprint(self) -> str:
        """Stable hex digest of this kernel's class and configuration.

        Two kernels with equal fingerprints produce equal Gram matrices
        (up to backend round-off) on equal graph collections — the
        property the artifact store's content addressing relies on. The
        Gram *engine* is excluded (scheduling never changes values);
        fitted state that does change values is mixed in via
        :meth:`_fingerprint_extra`.
        """
        return config_fingerprint(self, extra=self._fingerprint_extra())

    def _fingerprint_extra(self) -> dict:
        """Fitted state that changes kernel values (default: none)."""
        return {}

    def __call__(self, graph_a: Graph, graph_b: Graph) -> float:
        """Kernel value between two graphs (via a 2x2 Gram)."""
        matrix = self.gram([graph_a, graph_b])
        return float(matrix[0, 1])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    @abc.abstractmethod
    def _compute_gram(
        self, graphs: "list[Graph]", *, engine: "GramEngine | str | None" = None
    ) -> np.ndarray:
        """Subclass hook: the raw (unnormalised) Gram matrix."""

    def _resolve_engine(
        self, engine: "GramEngine | str | None" = None
    ) -> GramEngine:
        """Resolve the call-site engine, falling back to the sticky one."""
        return resolve_engine(engine if engine is not None else self.engine)

    @staticmethod
    def _check_graphs(graphs) -> None:
        if not isinstance(graphs, (list, tuple)) or len(graphs) == 0:
            raise KernelError("gram() needs a non-empty list of graphs")
        for i, g in enumerate(graphs):
            if not isinstance(g, Graph):
                raise KernelError(f"graphs[{i}] is {type(g).__name__}, expected Graph")
            if g.n_vertices == 0:
                raise KernelError(f"graphs[{i}] has no vertices")


class FeatureMapKernel(GraphKernel):
    """Kernels with an explicit feature map: ``K = X Xᵀ``.

    Subclasses implement :meth:`feature_matrix`; positive semidefiniteness
    is then automatic.
    """

    #: ``K_pq = <φ(G_p), φ(G_q)>`` with per-graph substructure counts:
    #: enlarging the collection only pads shared vocabularies with zero
    #: columns, which never changes an inner product. (Kernels whose
    #: features *sample* from collection-shared randomness must override
    #: this back to False — see GraphletKernel.)
    collection_independent = True

    def _compute_gram(
        self, graphs: "list[Graph]", *, engine: "GramEngine | str | None" = None
    ) -> np.ndarray:
        # Engine selection is accepted for API uniformity but moot here:
        # an explicit feature map makes the Gram a single (BLAS) matmul.
        features = self.feature_matrix(graphs)
        return features @ features.T

    def _compute_gram_into(
        self,
        graphs: "list[Graph]",
        sink: GramSink,
        engine: "GramEngine | str | None",
    ):
        # Feature extraction is linear in N; only the (N, N) *product*
        # is quadratic, so it is the product that streams: one
        # ``F[rows] @ F[cols].T`` matmul per tile, diagonal tiles
        # symmetrised exactly. The engine contributes only its tile size.
        features = np.asarray(self.feature_matrix(graphs), dtype=float)
        plan = TilePlan.gram(
            len(graphs), self._resolve_engine(engine).resolved_tile_size()
        )

        def block(rows, cols, diagonal):
            tile = features[rows[0] : rows[1]] @ features[cols[0] : cols[1]].T
            return (tile + tile.T) / 2.0 if diagonal else tile

        return stream_tiles(plan, sink, block)

    @abc.abstractmethod
    def feature_matrix(self, graphs: "list[Graph]") -> np.ndarray:
        """``(N, D)`` feature matrix; columns are substructure counts."""

    def cross_gram(
        self,
        graphs_a: "list[Graph]",
        graphs_b: "list[Graph]",
        *,
        engine: "GramEngine | str | None" = None,
        sink: "GramSink | None" = None,
        ctx=None,
    ) -> np.ndarray:
        """Rectangular Gram between two graph lists (shared feature space).

        The backend (accepted for signature parity with the pairwise
        family; only its tile size matters — each tile is one matmul)
        and sink come from ``ctx``; the loose ``engine=`` / ``sink=``
        keywords are deprecated shims. With a sink, the rectangle
        streams tile-by-tile instead of materialising at once.
        """
        ctx = resolve_context(
            ctx, owner=f"{self.name}.cross_gram", engine=engine, sink=sink
        )
        if ctx is not None:
            engine = ctx.engine_argument(self)
            sink = ctx.make_sink()
            ctx.validate(ensure_psd=False, sink=sink)
        self._check_graphs(graphs_a)
        self._check_graphs(graphs_b)
        features = self.feature_matrix(list(graphs_a) + list(graphs_b))
        fa = features[: len(graphs_a)]
        fb = features[len(graphs_a) :]
        if sink is None:
            return fa @ fb.T
        plan = TilePlan.cross(
            len(graphs_a),
            len(graphs_b),
            self._resolve_engine(engine).resolved_tile_size(),
        )
        result = stream_tiles(
            plan,
            sink,
            lambda rows, cols, _: fa[rows[0] : rows[1]] @ fb[cols[0] : cols[1]].T,
        )
        sink.commit()
        return result

    def _extension_blocks(
        self,
        old_graphs: "list[Graph]",
        new_graphs: "list[Graph]",
        engine: "GramEngine | str | None",
        store=None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        # One shared feature space over old + new (vocabulary union); the
        # old block's inner products are untouched by the extra columns.
        # No tile checkpointing: both blocks are single matmuls, cheaper
        # than the round trip a checkpoint would add.
        features = self.feature_matrix(old_graphs + new_graphs)
        old_features = features[: len(old_graphs)]
        new_features = features[len(old_graphs) :]
        return old_features @ new_features.T, new_features @ new_features.T


#: Memory budget (float64 elements, ~64 MB) for one batched intermediate in
#: the vectorized kernels' pair chunking — shared so every kernel's chunked
#: ``eigvalsh``/broadcast loop sizes its stacks the same way.
MIXED_CHUNK_ELEMENTS = 1 << 23


class PairwiseKernel(GraphKernel):
    """Kernels defined by a pairwise similarity over prepared states.

    Subclasses implement :meth:`prepare` (per-collection preprocessing; for
    HAQJSK this is where the shared prototype hierarchy is fitted) and
    :meth:`pair_value`. The Gram loop itself is delegated to a pluggable
    :class:`~repro.engine.base.GramEngine`; kernels whose pair value is
    batchable additionally override :meth:`block_values` so the batched and
    process backends can evaluate whole tiles with array operations.
    """

    def _compute_gram(
        self, graphs: "list[Graph]", *, engine: "GramEngine | str | None" = None
    ) -> np.ndarray:
        states = self._prepared_states(graphs)
        return self._resolve_engine(engine).gram(self, states)

    def _compute_gram_into(
        self,
        graphs: "list[Graph]",
        sink: GramSink,
        engine: "GramEngine | str | None",
    ):
        # The genuinely streaming path: preparation is linear, and the
        # engine's shared scheduler feeds each finished tile straight to
        # the sink, so an out-of-core Gram never exists in memory.
        states = self._prepared_states(graphs)
        return self._resolve_engine(engine).gram(self, states, sink=sink)

    def _prepared_states(self, graphs: "list[Graph]") -> list:
        states = self.prepare(list(graphs))
        if len(states) != len(graphs):
            raise KernelError(
                f"{self.name}: prepare() returned {len(states)} states for "
                f"{len(graphs)} graphs"
            )
        return states

    @abc.abstractmethod
    def prepare(self, graphs: "list[Graph]") -> list:
        """Collection-level preprocessing; returns one state per graph."""

    @abc.abstractmethod
    def pair_value(self, state_a, state_b) -> float:
        """Kernel value from two prepared states."""

    def block_values(self, states_a: list, states_b: list) -> np.ndarray:
        """Rectangular ``(len_a, len_b)`` block of kernel values.

        The default evaluates :meth:`pair_value` per cell; vectorized
        kernels override it with batched array math. Overrides must agree
        with the loop to ``1e-10`` — the engine backends rely on it.
        """
        matrix = np.empty((len(states_a), len(states_b)))
        for i, state_a in enumerate(states_a):
            for j, state_b in enumerate(states_b):
                matrix[i, j] = float(self.pair_value(state_a, state_b))
        return matrix

    @property
    def has_vectorized_blocks(self) -> bool:
        """True when this kernel overrides :meth:`block_values`."""
        return type(self).block_values is not PairwiseKernel.block_values

    def symmetric_block_values(self, states: list) -> np.ndarray:
        """Symmetric ``(n, n)`` diagonal block over one state list.

        Only the upper triangle is evaluated (and mirrored), so diagonal
        tiles cost the same ``n(n+1)/2`` pair values as the serial loop
        and every backend agrees on symmetry exactly. For vectorized
        kernels this default computes the full rectangle and keeps the
        upper triangle — acceptable only when the tile reduces to cheap
        array arithmetic (e.g. JTQK's ``q = 2`` matmuls); kernels whose
        per-pair cost dominates override this via
        :meth:`_symmetric_from_pairs` to batch just the triangle.
        """
        n = len(states)
        if self.has_vectorized_blocks:
            block = np.asarray(self.block_values(states, states), dtype=float)
            upper = np.triu(block)
            return upper + np.triu(block, 1).T
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i, n):
                value = float(self.pair_value(states[i], states[j]))
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix

    def _rectangular_from_pairs(
        self, states_a: list, states_b: list, pair_values_fn
    ) -> np.ndarray:
        """Rectangular block from a pair-list evaluator.

        ``pair_values_fn(states_a, states_b, idx_a, idx_b)`` returns the
        flat values for pairs ``(idx_a[p], idx_b[p])``; vectorized kernels
        plug their batched evaluator in here for :meth:`block_values`.
        """
        n_a, n_b = len(states_a), len(states_b)
        if not n_a or not n_b:
            return np.zeros((n_a, n_b))
        idx_a = np.repeat(np.arange(n_a), n_b)
        idx_b = np.tile(np.arange(n_b), n_a)
        return pair_values_fn(states_a, states_b, idx_a, idx_b).reshape(n_a, n_b)

    def _symmetric_from_pairs(self, states: list, pair_values_fn) -> np.ndarray:
        """Symmetric diagonal block evaluating only the upper triangle.

        For kernels whose per-pair cost dominates (an eigendecomposition
        per mixed state), the redundant lower triangle is *not* free —
        this restricts the batch to the serial loop's ``n(n+1)/2`` pairs
        and mirrors the result.
        """
        n = len(states)
        if not n:
            return np.zeros((0, 0))
        upper_i, upper_j = np.triu_indices(n)
        values = pair_values_fn(states, states, upper_i, upper_j)
        matrix = np.zeros((n, n))
        matrix[upper_i, upper_j] = values
        matrix[upper_j, upper_i] = values
        return matrix

    def cross_gram(
        self,
        graphs_a: "list[Graph]",
        graphs_b: "list[Graph]",
        *,
        engine: "GramEngine | str | None" = None,
        sink: "GramSink | None" = None,
        ctx=None,
    ) -> np.ndarray:
        """Rectangular Gram between two graph lists.

        Both lists are prepared as *one* collection — for collection-level
        kernels (HAQJSK fits its prototype system on the graphs it sees)
        this is the only consistent reading, and it means a pair's value
        here can differ from its value under a different collection,
        exactly as in the paper's protocol. The evaluation itself goes
        through the same engine backends as :meth:`gram`, so Nyström
        landmark columns get the batched path too; with a sink (from the
        ``ctx``; the loose ``engine=`` / ``sink=`` keywords are
        deprecated shims) the rectangle streams tile-by-tile
        (out-of-core / checkpointed).
        """
        ctx = resolve_context(
            ctx, owner=f"{self.name}.cross_gram", engine=engine, sink=sink
        )
        if ctx is not None:
            engine = ctx.engine_argument(self)
            sink = ctx.make_sink()
            ctx.validate(ensure_psd=False, sink=sink)
        self._check_graphs(graphs_a)
        self._check_graphs(graphs_b)
        states = self.prepare(list(graphs_a) + list(graphs_b))
        states_a = states[: len(graphs_a)]
        states_b = states[len(graphs_a) :]
        result = self._resolve_engine(engine).cross_gram(
            self, states_a, states_b, sink=sink
        )
        if sink is not None:
            sink.commit()
        return result

    def _extension_blocks(
        self,
        old_graphs: "list[Graph]",
        new_graphs: "list[Graph]",
        engine: "GramEngine | str | None",
        store=None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        # Preparation is (re)run over old + new as one collection — it is
        # linear and cheap relative to the pair stage, and for
        # collection-independent kernels (the gram_extend gate) it yields
        # the same pair values as any other collection. Only the N·ΔN
        # cross pairs and the ΔN(ΔN+1)/2 new diagonal pairs are evaluated,
        # through the same engine backends as a full Gram; a store makes
        # both blocks tile-checkpointed (kill-resume at tile granularity,
        # slice-keyed tile reuse across prior checkpointed runs).
        states = self.prepare(old_graphs + new_graphs)
        if len(states) != len(old_graphs) + len(new_graphs):
            raise KernelError(
                f"{self.name}: prepare() returned {len(states)} states for "
                f"{len(old_graphs) + len(new_graphs)} graphs"
            )
        resolved = self._resolve_engine(engine)
        old_states = states[: len(old_graphs)]
        new_states = states[len(old_graphs) :]
        cross_sink = diagonal_sink = None
        if store is not None:
            from repro.store.tiles import CheckpointSink, tile_keyer_for

            cross_sink = CheckpointSink(
                store, tile_keyer_for(self, old_graphs, new_graphs)
            )
            diagonal_sink = CheckpointSink(
                store, tile_keyer_for(self, new_graphs)
            )
        cross = resolved.cross_gram(
            self, old_states, new_states, sink=cross_sink
        )
        diagonal = resolved.gram(self, new_states, sink=diagonal_sink)
        return cross, diagonal


def cosine_scale(diagonal: np.ndarray) -> np.ndarray:
    """Per-graph cosine scale ``1 / sqrt(K_ii)`` from a Gram diagonal.

    Non-positive self-similarities (possible for indefinite baselines)
    are treated as 1 to avoid dividing by zero; the properties bench
    reports them. This is *the* diagonal-scale policy: whole-matrix
    normalisation (:func:`normalize_gram`), tile-wise normalisation of
    out-of-core Grams, and the serving path's ``K(new, train)`` rows all
    scale through it, so train- and serving-time cosine geometry agree by
    construction.
    """
    diag = np.array(diagonal, dtype=float).reshape(-1)
    diag[diag <= 0] = 1.0
    return 1.0 / np.sqrt(diag)


def normalize_gram_block(
    block: np.ndarray, row_scale: np.ndarray, col_scale: np.ndarray
) -> np.ndarray:
    """One tile (or cross-row block) of cosine normalisation.

    ``row_scale`` / ``col_scale`` are :func:`cosine_scale` outputs for the
    block's row and column graphs. On a full square Gram with its own
    diagonal scales this reproduces :func:`normalize_gram` bit-for-bit
    (same association order); at serving time the *column* scales come
    from the **training** diagonal stored in the model bundle, never from
    statistics of the block itself.
    """
    return (
        np.asarray(block, dtype=float)
        * np.asarray(row_scale, dtype=float)[:, None]
        * np.asarray(col_scale, dtype=float)[None, :]
    )


def normalize_gram(matrix: np.ndarray) -> np.ndarray:
    """Cosine-normalise a Gram matrix: ``K_ij / sqrt(K_ii K_jj)``."""
    arr = np.asarray(matrix, dtype=float)
    scale = cosine_scale(np.diag(arr))
    return arr * scale[:, None] * scale[None, :]


def normalize_gram_inplace_tiled(matrix, *, tile_size: int):
    """Cosine-normalise a (possibly memmapped) Gram **in place**, one tile
    at a time.

    Peak extra memory is ``O(N)`` for the diagonal scales plus one tile —
    never the matrix — so this is the ``normalize=True`` path for
    out-of-core Grams. Entry-for-entry the arithmetic matches
    :func:`normalize_gram` (each cell computes ``(K_ij * s_i) * s_j``).
    """
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise KernelError(
            f"tile-wise normalisation needs a square Gram, got {matrix.shape}"
        )
    scale = cosine_scale(np.asarray(matrix.diagonal(), dtype=float))
    for r0, r1 in tile_ranges(n, tile_size):
        for c0, c1 in tile_ranges(n, tile_size):
            matrix[r0:r1, c0:c1] = normalize_gram_block(
                matrix[r0:r1, c0:c1], scale[r0:r1], scale[c0:c1]
            )
    if isinstance(matrix, np.memmap):
        matrix.flush()
    return matrix


def replay_tiles(matrix: np.ndarray, plan: TilePlan, sink: GramSink):
    """Feed an already-computed matrix through a sink tile-by-tile.

    The adapter for code paths that still produce dense matrices (the
    core-variant wrappers' level-summed Grams): downstream sinks see the
    same tile stream a streaming computation would emit, so memmap
    assembly works uniformly — only the bounded-memory property is
    (necessarily) absent (and checkpointing callers skip such kernels,
    see :attr:`GraphKernel.streams_tiles`).
    """
    return stream_tiles(
        plan,
        sink,
        lambda rows, cols, _: matrix[rows[0] : rows[1], cols[0] : cols[1]],
    )


def rbf_from_squared_distances(sq_dists: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """``exp(-gamma * d^2)`` elementwise — helper for distance-based kernels."""
    if gamma <= 0:
        raise KernelError(f"gamma must be > 0, got {gamma}")
    return np.exp(-gamma * np.clip(np.asarray(sq_dists, dtype=float), 0.0, None))
