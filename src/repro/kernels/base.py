"""Graph-kernel framework: base classes, traits, and Gram-matrix machinery.

Every kernel in Table III/IV is a :class:`GraphKernel`. Kernels either
expose an explicit feature map (:class:`FeatureMapKernel` — WLSK, SPGK,
GCGK, ...) or a pairwise similarity over per-graph prepared states
(:class:`PairwiseKernel` — the QJSD family). Each class carries
:class:`KernelTraits`, the machine-readable version of the paper's Table
I/III property matrix, which the properties experiment verifies empirically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelError
from repro.graphs.graph import Graph
from repro.utils.linalg import is_positive_semidefinite, project_to_psd


@dataclass(frozen=True)
class KernelTraits:
    """Static kernel properties as tabulated in paper Tables I and III."""

    framework: str = "R-convolution"  # or "Information Theory"
    positive_definite: bool = True
    aligned: bool = False
    transitive: bool = False
    structure_patterns: tuple = ()
    computing_model: str = "Classical"  # or "Quantum Walks"
    hierarchical: bool = False
    captures_local: bool = True
    captures_global: bool = False
    notes: str = ""


class GraphKernel(abc.ABC):
    """Base class: a positive (semi-)definite similarity between graphs.

    Subclasses implement :meth:`_compute_gram`; the public :meth:`gram`
    adds input validation, optional cosine normalisation and optional PSD
    projection (used for the indefinite baselines before the SVM).
    """

    #: Human-readable kernel name (Table IV row label).
    name: str = "kernel"
    #: Static properties; see :class:`KernelTraits`.
    traits: KernelTraits = KernelTraits()

    def gram(
        self,
        graphs: "list[Graph]",
        *,
        normalize: bool = False,
        ensure_psd: bool = False,
    ) -> np.ndarray:
        """The full ``N x N`` Gram matrix over ``graphs``.

        Parameters
        ----------
        normalize:
            Apply cosine normalisation ``K_ij / sqrt(K_ii K_jj)``, the
            standard protocol before C-SVM training.
        ensure_psd:
            Clip negative Gram eigenvalues to zero. Only needed for the
            indefinite baselines (unaligned/aligned QJSK); the HAQJSK
            kernels are PD by construction.
        """
        self._check_graphs(graphs)
        matrix = np.asarray(self._compute_gram(list(graphs)), dtype=float)
        n = len(graphs)
        if matrix.shape != (n, n):
            raise KernelError(
                f"{self.name}: _compute_gram returned shape {matrix.shape}, "
                f"expected ({n}, {n})"
            )
        matrix = (matrix + matrix.T) / 2.0
        if normalize:
            matrix = normalize_gram(matrix)
        if ensure_psd and not is_positive_semidefinite(matrix):
            matrix = project_to_psd(matrix)
        return matrix

    def __call__(self, graph_a: Graph, graph_b: Graph) -> float:
        """Kernel value between two graphs (via a 2x2 Gram)."""
        matrix = self.gram([graph_a, graph_b])
        return float(matrix[0, 1])

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    @abc.abstractmethod
    def _compute_gram(self, graphs: "list[Graph]") -> np.ndarray:
        """Subclass hook: the raw (unnormalised) Gram matrix."""

    @staticmethod
    def _check_graphs(graphs) -> None:
        if not isinstance(graphs, (list, tuple)) or len(graphs) == 0:
            raise KernelError("gram() needs a non-empty list of graphs")
        for i, g in enumerate(graphs):
            if not isinstance(g, Graph):
                raise KernelError(f"graphs[{i}] is {type(g).__name__}, expected Graph")
            if g.n_vertices == 0:
                raise KernelError(f"graphs[{i}] has no vertices")


class FeatureMapKernel(GraphKernel):
    """Kernels with an explicit feature map: ``K = X Xᵀ``.

    Subclasses implement :meth:`feature_matrix`; positive semidefiniteness
    is then automatic.
    """

    def _compute_gram(self, graphs: "list[Graph]") -> np.ndarray:
        features = self.feature_matrix(graphs)
        return features @ features.T

    @abc.abstractmethod
    def feature_matrix(self, graphs: "list[Graph]") -> np.ndarray:
        """``(N, D)`` feature matrix; columns are substructure counts."""

    def cross_gram(
        self, graphs_a: "list[Graph]", graphs_b: "list[Graph]"
    ) -> np.ndarray:
        """Rectangular Gram between two graph lists (shared feature space)."""
        self._check_graphs(graphs_a)
        self._check_graphs(graphs_b)
        features = self.feature_matrix(list(graphs_a) + list(graphs_b))
        fa = features[: len(graphs_a)]
        fb = features[len(graphs_a) :]
        return fa @ fb.T


class PairwiseKernel(GraphKernel):
    """Kernels defined by a pairwise similarity over prepared states.

    Subclasses implement :meth:`prepare` (per-collection preprocessing; for
    HAQJSK this is where the shared prototype hierarchy is fitted) and
    :meth:`pair_value`.
    """

    def _compute_gram(self, graphs: "list[Graph]") -> np.ndarray:
        states = self.prepare(graphs)
        if len(states) != len(graphs):
            raise KernelError(
                f"{self.name}: prepare() returned {len(states)} states for "
                f"{len(graphs)} graphs"
            )
        n = len(graphs)
        matrix = np.zeros((n, n))
        for i in range(n):
            for j in range(i, n):
                value = float(self.pair_value(states[i], states[j]))
                matrix[i, j] = value
                matrix[j, i] = value
        return matrix

    @abc.abstractmethod
    def prepare(self, graphs: "list[Graph]") -> list:
        """Collection-level preprocessing; returns one state per graph."""

    @abc.abstractmethod
    def pair_value(self, state_a, state_b) -> float:
        """Kernel value from two prepared states."""

    def cross_gram(
        self, graphs_a: "list[Graph]", graphs_b: "list[Graph]"
    ) -> np.ndarray:
        """Rectangular Gram between two graph lists.

        Both lists are prepared as *one* collection — for collection-level
        kernels (HAQJSK fits its prototype system on the graphs it sees)
        this is the only consistent reading, and it means a pair's value
        here can differ from its value under a different collection,
        exactly as in the paper's protocol.
        """
        self._check_graphs(graphs_a)
        self._check_graphs(graphs_b)
        states = self.prepare(list(graphs_a) + list(graphs_b))
        states_a = states[: len(graphs_a)]
        states_b = states[len(graphs_a) :]
        matrix = np.zeros((len(graphs_a), len(graphs_b)))
        for i, state_a in enumerate(states_a):
            for j, state_b in enumerate(states_b):
                matrix[i, j] = float(self.pair_value(state_a, state_b))
        return matrix


def normalize_gram(matrix: np.ndarray) -> np.ndarray:
    """Cosine-normalise a Gram matrix: ``K_ij / sqrt(K_ii K_jj)``.

    Non-positive diagonal entries (possible for indefinite baselines) are
    treated as 1 to avoid dividing by zero; the properties bench reports
    them.
    """
    arr = np.asarray(matrix, dtype=float)
    diag = np.diag(arr).copy()
    diag[diag <= 0] = 1.0
    scale = 1.0 / np.sqrt(diag)
    return arr * scale[:, None] * scale[None, :]


def rbf_from_squared_distances(sq_dists: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """``exp(-gamma * d^2)`` elementwise — helper for distance-based kernels."""
    if gamma <= 0:
        raise KernelError(f"gamma must be > 0, got {gamma}")
    return np.exp(-gamma * np.clip(np.asarray(sq_dists, dtype=float), 0.0, None))
