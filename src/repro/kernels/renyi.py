"""Depth-based Rényi entropy kernel (SPEGK/SREGK, Xu et al. 2021, ref. [25]).

Each vertex is described by the second-order Rényi entropies of its
expansion subgraphs (a Rényi flavour of the DB representation); the kernel
aligns the two vertex sets with a linear assignment and sums a Gaussian
similarity over the aligned representation pairs.

Like ASK, the pairwise alignment is not transitive, so the kernel is not
guaranteed PD; ``ensure_psd=True`` repairs the Gram matrix for the SVM.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel, scaled
from repro.utils.validation import check_in_range, check_positive_int


def renyi2_db_representations(graph: Graph, n_layers: int) -> np.ndarray:
    """Per-vertex depth-based Rényi-2 entropy vectors (``(n, n_layers)``).

    Layer ``j`` holds the second-order Rényi entropy
    ``-log sum_u p_u^2`` of the degree distribution of the j-layer
    expansion subgraph rooted at the vertex.
    """
    n = graph.n_vertices
    distances = graph.shortest_path_lengths()
    adjacency = graph.adjacency
    output = np.zeros((n, n_layers))
    for v in range(n):
        dist_v = distances[v]
        reachable = dist_v >= 0
        previous = 0.0
        max_depth = int(dist_v[reachable].max()) if reachable.any() else 0
        for layer in range(1, n_layers + 1):
            if layer <= max_depth or layer == 1:
                members = np.flatnonzero(reachable & (dist_v <= layer))
                block = adjacency[np.ix_(members, members)]
                degrees = block.sum(axis=1)
                total = degrees.sum()
                if total > 0:
                    p = degrees / total
                    collision = float(np.sum(p * p))
                    previous = -np.log(collision) if collision > 0 else 0.0
                else:
                    previous = 0.0
            output[v, layer - 1] = previous
    return output


@register_kernel("SPEGK", defaults={"n_layers": scaled(6, 10)})
class RenyiEntropyKernel(PairwiseKernel):
    """SPEGK: Gaussian similarity over optimally aligned Rényi DB vectors."""

    name = "SPEGK"
    #: DB vectors use the kernel's fixed ``n_layers``, not a
    #: collection-level layer count; the assignment is per pair.
    collection_independent = True
    traits = KernelTraits(
        framework="Information Theory",
        positive_definite=False,
        aligned=True,
        transitive=False,
        structure_patterns=("Local (Vertices)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
        notes="pairwise alignment of Rényi-2 DB vectors",
    )

    def __init__(self, *, n_layers: int = 10, gamma: float = 1.0) -> None:
        self.n_layers = check_positive_int(n_layers, "n_layers", minimum=1)
        self.gamma = check_in_range(gamma, "gamma", low=0.0, high=np.inf, low_inclusive=False)

    def prepare(self, graphs: "list[Graph]") -> list:
        return [renyi2_db_representations(g, self.n_layers) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        diffs = state_a[:, None, :] - state_b[None, :, :]
        sq_dists = np.sum(diffs**2, axis=2)
        rows, cols = linear_sum_assignment(sq_dists)
        return float(np.exp(-self.gamma * sq_dists[rows, cols]).sum())
