"""Jensen-Tsallis q-difference kernel (JTQK, Bai et al. 2014, ref. [44]).

The reference kernel couples CTQW information with Weisfeiler-Lehman
subtree patterns: at each WL iteration the quantum walk's time-averaged
vertex occupation probabilities are aggregated per subtree label, and the
kernel compares the resulting distributions with the Jensen-Tsallis
q-difference (q = 2 in the paper's setup).

Substitution note (DESIGN.md): the original JTQK evaluates a q-difference
per matched subtree pair; we aggregate occupation mass per WL label first
and compare label distributions, which preserves the kernel's taxonomy in
Table III (quantum computing model, subtree patterns, global entropy) at a
fraction of the cost. The gram matrix stays PSD because each level's
``exp(-T_q)`` term is applied to a proper divergence of aggregated
distributions and the levels are summed.
"""

from __future__ import annotations

import numpy as np

from repro.backend import active_policy
from repro.errors import KernelError
from repro.graphs.graph import Graph
from repro.kernels.base import MIXED_CHUNK_ELEMENTS, KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel, scaled
from repro.kernels.wl import wl_label_sequences
from repro.quantum.density import graph_density_matrix
from repro.utils.validation import check_in_range, check_positive_int


def _tsallis_entropy_classical(probabilities: np.ndarray, q: float) -> float:
    """Classical Tsallis entropy ``(1 - sum p^q) / (q - 1)``."""
    p = np.clip(np.asarray(probabilities, dtype=float), 0.0, None)
    total = p.sum()
    if total <= 0:
        return 0.0
    p = p / total
    return float((1.0 - np.sum(p[p > 0] ** q)) / (q - 1.0))


def jensen_tsallis_q_difference_classical(
    p: np.ndarray, q_vec: np.ndarray, q: float
) -> float:
    """``T_q(P, Q) = S_q((P+Q)/2) - (S_q(P) + S_q(Q)) / 2`` over vectors."""
    mixed = (np.asarray(p, dtype=float) + np.asarray(q_vec, dtype=float)) / 2.0
    difference = _tsallis_entropy_classical(mixed, q) - 0.5 * (
        _tsallis_entropy_classical(p, q) + _tsallis_entropy_classical(q_vec, q)
    )
    return float(max(difference, 0.0))


@register_kernel(
    "JTQK", defaults={"q": 2.0, "n_iterations": scaled(4, 10)}
)
class JensenTsallisQKernel(PairwiseKernel):
    """JTQK: WL-partitioned CTQW occupation distributions under ``T_q``.

    ``K(G_p, G_q) = sum_{h=0..H} exp(-T_q(P^h_p, P^h_q))`` where ``P^h_g``
    distributes graph ``g``'s CTQW occupation probabilities (the diagonal of
    the Eq. 5 density matrix) over the shared WL label vocabulary at
    iteration ``h``. Paper configuration: ``q = 2``, subtree height 10.
    """

    name = "JTQK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Global (Entropy)", "Local (Subtrees)"),
        computing_model="Quantum Walks",
        captures_local=True,
        captures_global=True,
        notes="simplified per-label aggregation; see module docstring",
    )
    #: The shared WL vocabulary only *indexes* canonical subtree labels;
    #: growing the collection pads both distributions of a pair with
    #: matching zeros, which leave every Tsallis entropy (and hence the
    #: pair value) unchanged.
    collection_independent = True

    def __init__(
        self,
        q: float = 2.0,
        *,
        n_iterations: int = 10,
        hamiltonian: str = "laplacian",
    ) -> None:
        self.q = check_in_range(q, "q", low=1.0, high=np.inf, low_inclusive=False)
        self.n_iterations = check_positive_int(n_iterations, "n_iterations", minimum=0)
        self.hamiltonian = hamiltonian

    def prepare(self, graphs: "list[Graph]") -> list:
        sequences = wl_label_sequences(graphs, self.n_iterations)
        n_labels = 1 + max(
            int(labels.max())
            for per_iter in sequences
            for labels in per_iter
            if labels.size
        )
        occupations = [
            np.clip(np.diag(graph_density_matrix(g, hamiltonian=self.hamiltonian)), 0, None)
            for g in graphs
        ]
        states = []
        for g_index in range(len(graphs)):
            per_level = []
            for per_iter in sequences:
                labels = per_iter[g_index]
                distribution = np.bincount(
                    labels, weights=occupations[g_index], minlength=n_labels
                )
                total = distribution.sum()
                if total > 0:
                    distribution = distribution / total
                per_level.append(distribution)
            states.append(per_level)
        return states

    def _check_states(self, state_a, state_b) -> None:
        """Validate that two prepared states share level count and vocabulary.

        States from different ``prepare`` calls have different WL label
        vocabularies (and possibly level counts); comparing them is
        meaningless, and without this check the mismatch either truncated
        silently (serial ``zip``) or crashed opaquely (batched stacking).
        """
        if len(state_a) != len(state_b):
            raise KernelError(
                f"{self.name}: WL level count mismatch between prepared "
                f"states ({len(state_a)} vs {len(state_b)} levels); both "
                f"states must come from one prepare() over one collection"
            )
        if state_a and state_a[0].shape != state_b[0].shape:
            raise KernelError(
                f"{self.name}: WL label vocabulary mismatch between "
                f"prepared states ({state_a[0].shape[0]} vs "
                f"{state_b[0].shape[0]} labels); both states must come "
                f"from one prepare() over one collection"
            )

    def pair_value(self, state_a, state_b) -> float:
        self._check_states(state_a, state_b)
        total = 0.0
        for dist_a, dist_b in zip(state_a, state_b):
            difference = jensen_tsallis_q_difference_classical(dist_a, dist_b, self.q)
            total += float(np.exp(-difference))
        return total

    def _tsallis_batch(self, distributions: np.ndarray) -> np.ndarray:
        """Tsallis entropies along the last axis of a distribution stack.

        Mirrors :func:`_tsallis_entropy_classical` elementwise: clip,
        normalise by the (possibly != 1) mass, ``(1 - sum p^q)/(q - 1)``,
        and zero wherever the distribution carries no mass.
        """
        clipped = np.clip(distributions, 0.0, None)
        totals = clipped.sum(axis=-1)
        safe_totals = np.where(totals > 0, totals, 1.0)
        normalised = clipped / safe_totals[..., None]
        power_sum = (normalised ** self.q).sum(axis=-1)
        entropies = (1.0 - power_sum) / (self.q - 1.0)
        return np.where(totals > 0, entropies, 0.0)

    def block_values(self, states_a: list, states_b: list) -> np.ndarray:
        """Vectorized tile over the shared WL label vocabulary.

        Prepared states are dense ``(n_levels, n_labels)`` distribution
        stacks of one common shape, so an entire tile reduces to array
        arithmetic — no per-pair Python at all. At the paper's ``q = 2``
        the mixed power sum expands algebraically,

            sum ((p + r)/2)^2 = (sum p^2 + 2 p.r + sum r^2) / 4,

        so the only pairwise quantity is the inner-product matrix
        ``p.r`` — one BLAS matmul per WL level over the (very sparse in
        practice) label distributions, instead of materialising every
        mixed distribution. Other ``q`` values take the generic broadcast
        path with row chunking.
        """
        if not states_a or not states_b:
            return np.zeros((len(states_a), len(states_b)))
        for state in list(states_a) + list(states_b):
            self._check_states(states_a[0], state)
        stack_a = np.asarray(states_a, dtype=float)  # (n_a, L, D)
        stack_b = np.asarray(states_b, dtype=float)
        if self.q == 2.0:
            return self._block_values_quadratic(stack_a, stack_b)
        return self._rectangular_from_pairs(
            states_a,
            states_b,
            lambda sa, sb, ia, ib: self._generic_values_for_pairs(
                stack_a, stack_b, ia, ib
            ),
        )

    def symmetric_block_values(self, states: list) -> np.ndarray:
        """Diagonal tile: full-rectangle matmuls at ``q = 2`` (cheap),
        upper-triangle-only broadcast for the generic-``q`` path (the
        mixed-stack reduction there is the dominant cost)."""
        if self.q == 2.0 or not states:
            return super().symmetric_block_values(states)
        for state in states:
            self._check_states(states[0], state)
        stack = np.asarray(states, dtype=float)
        return self._symmetric_from_pairs(
            states,
            lambda sa, sb, ia, ib: self._generic_values_for_pairs(
                stack, stack, ia, ib
            ),
        )

    def _block_values_quadratic(
        self, stack_a: np.ndarray, stack_b: np.ndarray
    ) -> np.ndarray:
        """``q = 2`` tile via per-level Gram matmuls (no mixed stacks).

        The per-level cross products — the only pairwise cost — run
        through the ambient :class:`~repro.backend.ComputePolicy`, so a
        float32 (or GPU) backend accelerates the matmul while all the
        entropy algebra stays in host float64.
        """
        policy = active_policy()
        totals_a = stack_a.sum(axis=-1)  # (n_a, L)
        totals_b = stack_b.sum(axis=-1)
        sq_a = (stack_a * stack_a).sum(axis=-1)
        sq_b = (stack_b * stack_b).sum(axis=-1)
        entropies_a = self._quadratic_entropy(sq_a, totals_a)
        entropies_b = self._quadratic_entropy(sq_b, totals_b)
        n_levels = stack_a.shape[1]
        values = np.zeros((stack_a.shape[0], stack_b.shape[0]))
        for level in range(n_levels):
            cross = policy.matmul(stack_a[:, level, :], stack_b[:, level, :].T)
            mixed_sq = (sq_a[:, level][:, None] + 2.0 * cross + sq_b[None, :, level]) / 4.0
            mixed_totals = (totals_a[:, level][:, None] + totals_b[None, :, level]) / 2.0
            mixed_entropy = self._quadratic_entropy(mixed_sq, mixed_totals)
            difference = mixed_entropy - 0.5 * (
                entropies_a[:, level][:, None] + entropies_b[None, :, level]
            )
            np.clip(difference, 0.0, None, out=difference)
            values += np.exp(-difference)
        return values

    @staticmethod
    def _quadratic_entropy(
        square_sums: np.ndarray, totals: np.ndarray
    ) -> np.ndarray:
        """``S_2(p) = 1 - sum p^2 / total^2``, zero where massless."""
        safe_totals = np.where(totals > 0, totals, 1.0)
        return np.where(totals > 0, 1.0 - square_sums / (safe_totals * safe_totals), 0.0)

    def _generic_values_for_pairs(
        self,
        stack_a: np.ndarray,
        stack_b: np.ndarray,
        idx_a: np.ndarray,
        idx_b: np.ndarray,
    ) -> np.ndarray:
        """Arbitrary-``q`` values for an explicit pair list, chunked."""
        entropies_a = self._tsallis_batch(stack_a)  # (n_a, L)
        entropies_b = self._tsallis_batch(stack_b)
        per_pair = stack_a.shape[1] * stack_a.shape[2]
        n_pairs = idx_a.size
        values = np.empty(n_pairs)
        chunk = max(1, MIXED_CHUNK_ELEMENTS // max(1, per_pair))
        for start in range(0, n_pairs, chunk):
            stop = min(start + chunk, n_pairs)
            rows = idx_a[start:stop]
            cols = idx_b[start:stop]
            mixed = (stack_a[rows] + stack_b[cols]) / 2.0  # (c, L, D)
            difference = (
                self._tsallis_batch(mixed)
                - 0.5 * (entropies_a[rows] + entropies_b[cols])
            )
            np.clip(difference, 0.0, None, out=difference)
            values[start:stop] = np.exp(-difference).sum(axis=-1)
        return values
