"""Jensen-Tsallis q-difference kernel (JTQK, Bai et al. 2014, ref. [44]).

The reference kernel couples CTQW information with Weisfeiler-Lehman
subtree patterns: at each WL iteration the quantum walk's time-averaged
vertex occupation probabilities are aggregated per subtree label, and the
kernel compares the resulting distributions with the Jensen-Tsallis
q-difference (q = 2 in the paper's setup).

Substitution note (DESIGN.md): the original JTQK evaluates a q-difference
per matched subtree pair; we aggregate occupation mass per WL label first
and compare label distributions, which preserves the kernel's taxonomy in
Table III (quantum computing model, subtree patterns, global entropy) at a
fraction of the cost. The gram matrix stays PSD because each level's
``exp(-T_q)`` term is applied to a proper divergence of aggregated
distributions and the levels are summed.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.kernels.wl import wl_label_sequences
from repro.quantum.density import graph_density_matrix
from repro.utils.validation import check_in_range, check_positive_int


def _tsallis_entropy_classical(probabilities: np.ndarray, q: float) -> float:
    """Classical Tsallis entropy ``(1 - sum p^q) / (q - 1)``."""
    p = np.clip(np.asarray(probabilities, dtype=float), 0.0, None)
    total = p.sum()
    if total <= 0:
        return 0.0
    p = p / total
    return float((1.0 - np.sum(p[p > 0] ** q)) / (q - 1.0))


def jensen_tsallis_q_difference_classical(
    p: np.ndarray, q_vec: np.ndarray, q: float
) -> float:
    """``T_q(P, Q) = S_q((P+Q)/2) - (S_q(P) + S_q(Q)) / 2`` over vectors."""
    mixed = (np.asarray(p, dtype=float) + np.asarray(q_vec, dtype=float)) / 2.0
    difference = _tsallis_entropy_classical(mixed, q) - 0.5 * (
        _tsallis_entropy_classical(p, q) + _tsallis_entropy_classical(q_vec, q)
    )
    return float(max(difference, 0.0))


class JensenTsallisQKernel(PairwiseKernel):
    """JTQK: WL-partitioned CTQW occupation distributions under ``T_q``.

    ``K(G_p, G_q) = sum_{h=0..H} exp(-T_q(P^h_p, P^h_q))`` where ``P^h_g``
    distributes graph ``g``'s CTQW occupation probabilities (the diagonal of
    the Eq. 5 density matrix) over the shared WL label vocabulary at
    iteration ``h``. Paper configuration: ``q = 2``, subtree height 10.
    """

    name = "JTQK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Global (Entropy)", "Local (Subtrees)"),
        computing_model="Quantum Walks",
        captures_local=True,
        captures_global=True,
        notes="simplified per-label aggregation; see module docstring",
    )

    def __init__(
        self,
        q: float = 2.0,
        *,
        n_iterations: int = 10,
        hamiltonian: str = "laplacian",
    ) -> None:
        self.q = check_in_range(q, "q", low=1.0, high=np.inf, low_inclusive=False)
        self.n_iterations = check_positive_int(n_iterations, "n_iterations", minimum=0)
        self.hamiltonian = hamiltonian

    def prepare(self, graphs: "list[Graph]") -> list:
        sequences = wl_label_sequences(graphs, self.n_iterations)
        n_labels = 1 + max(
            int(labels.max())
            for per_iter in sequences
            for labels in per_iter
            if labels.size
        )
        occupations = [
            np.clip(np.diag(graph_density_matrix(g, hamiltonian=self.hamiltonian)), 0, None)
            for g in graphs
        ]
        states = []
        for g_index in range(len(graphs)):
            per_level = []
            for per_iter in sequences:
                labels = per_iter[g_index]
                distribution = np.bincount(
                    labels, weights=occupations[g_index], minlength=n_labels
                )
                total = distribution.sum()
                if total > 0:
                    distribution = distribution / total
                per_level.append(distribution)
            states.append(per_level)
        return states

    def pair_value(self, state_a, state_b) -> float:
        total = 0.0
        for dist_a, dist_b in zip(state_a, state_b):
            difference = jensen_tsallis_q_difference_classical(dist_a, dist_b, self.q)
            total += float(np.exp(-difference))
        return total
