"""The previous-generation QJSK kernels (paper Section II-D, refs [32, 41]).

Two baselines the paper improves upon:

* :class:`QJSKUnaligned` — ``k_QJSU`` (Eq. 9): zero-pad the smaller
  density matrix and take ``exp(-mu * QJSD)``. Not permutation invariant,
  not positive definite.
* :class:`QJSKAligned` — ``k_QJSA`` (Eq. 11): first permute the smaller
  density matrix with the Umeyama spectral correspondence, then as above.
  Permutation robust in practice but the pairwise matching is not
  transitive, so positive definiteness is still not guaranteed.

The Table IV row "QJSK" is the unaligned variant, matching ref. [41].
"""

from __future__ import annotations

import numpy as np

from repro.alignment.umeyama import permute_with, umeyama_correspondence
from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.quantum.density import graph_density_matrix, pad_density_matrix
from repro.quantum.divergence import quantum_jensen_shannon_divergence
from repro.utils.validation import check_in_range

_QJSK_TRAITS = KernelTraits(
    framework="Information Theory",
    positive_definite=False,
    aligned=False,
    transitive=False,
    structure_patterns=("Global (Entropy)",),
    computing_model="Quantum Walks",
    captures_local=False,
    captures_global=True,
    notes="paper Section II-D; indefinite",
)


class QJSKUnaligned(PairwiseKernel):
    """``k_QJSU(G_p, G_q) = exp(-mu * D_QJS(rho_p, rho_q))`` (Eq. 9)."""

    name = "QJSK"
    traits = _QJSK_TRAITS

    def __init__(self, mu: float = 1.0, *, hamiltonian: str = "laplacian") -> None:
        self.mu = check_in_range(mu, "mu", low=0.0, high=np.inf, low_inclusive=False)
        self.hamiltonian = hamiltonian

    def prepare(self, graphs: "list[Graph]") -> list:
        return [graph_density_matrix(g, hamiltonian=self.hamiltonian) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        size = max(state_a.shape[0], state_b.shape[0])
        divergence = quantum_jensen_shannon_divergence(
            pad_density_matrix(state_a, size), pad_density_matrix(state_b, size)
        )
        return float(np.exp(-self.mu * divergence))


class QJSKAligned(PairwiseKernel):
    """``k_QJSA`` (Eq. 11): Umeyama-align the density matrices first.

    The correspondence matrix ``Q`` comes from the Umeyama spectral method
    on the two density matrices (paper Section II-D); the smaller matrix is
    zero-padded before matching.
    """

    name = "QJSK(A)"
    traits = KernelTraits(
        framework="Information Theory",
        positive_definite=False,
        aligned=True,
        transitive=False,
        structure_patterns=("Global (Entropy)",),
        computing_model="Quantum Walks",
        captures_local=False,
        captures_global=True,
        notes="pairwise Umeyama alignment; not transitive, still indefinite",
    )

    def __init__(self, mu: float = 1.0, *, hamiltonian: str = "laplacian") -> None:
        self.mu = check_in_range(mu, "mu", low=0.0, high=np.inf, low_inclusive=False)
        self.hamiltonian = hamiltonian

    def prepare(self, graphs: "list[Graph]") -> list:
        return [graph_density_matrix(g, hamiltonian=self.hamiltonian) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        size = max(state_a.shape[0], state_b.shape[0])
        rho_p = pad_density_matrix(state_a, size)
        rho_q = pad_density_matrix(state_b, size)
        q_matrix = umeyama_correspondence(rho_p, rho_q)
        aligned_q = permute_with(rho_q, q_matrix)
        divergence = quantum_jensen_shannon_divergence(rho_p, aligned_q)
        return float(np.exp(-self.mu * divergence))
