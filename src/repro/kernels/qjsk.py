"""The previous-generation QJSK kernels (paper Section II-D, refs [32, 41]).

Two baselines the paper improves upon:

* :class:`QJSKUnaligned` — ``k_QJSU`` (Eq. 9): zero-pad the smaller
  density matrix and take ``exp(-mu * QJSD)``. Not permutation invariant,
  not positive definite.
* :class:`QJSKAligned` — ``k_QJSA`` (Eq. 11): first permute the smaller
  density matrix with the Umeyama spectral correspondence, then as above.
  Permutation robust in practice but the pairwise matching is not
  transitive, so positive definiteness is still not guaranteed.

The Table IV row "QJSK" is the unaligned variant, matching ref. [41].
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.alignment.umeyama import permute_with, umeyama_correspondence
from repro.backend import active_policy
from repro.graphs.graph import Graph
from repro.kernels.base import MIXED_CHUNK_ELEMENTS, KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel
from repro.quantum.density import graph_density_matrix, pad_density_matrix
from repro.quantum.divergence import QJSD_MAX, quantum_jensen_shannon_divergence
from repro.quantum.entropy import von_neumann_entropies, von_neumann_entropy
from repro.utils.linalg import eigh_sorted
from repro.utils.validation import check_in_range


def _padded_stack(states: "list[np.ndarray]", size: int) -> np.ndarray:
    """Stack density matrices zero-padded to a common ``(size, size)``."""
    stack = np.zeros((len(states), size, size))
    for index, state in enumerate(states):
        n = state.shape[0]
        stack[index, :n, :n] = state
    return stack


def _mixed_entropies_for_pairs(
    stack_a: np.ndarray,
    stack_b: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
) -> np.ndarray:
    """Entropies of the mixed states ``(rho_idx_a[p] + sigma_idx_b[p]) / 2``.

    Dispatched through the ambient :class:`~repro.backend.ComputePolicy`:
    the gather/mix/reduce pipeline runs on the policy's backend at its
    device precision, chunked (same element budget as the historical
    loop, so the float64 reference path is bit-stable) to bound the
    gathered intermediate regardless of tile size or pair count.
    """
    return active_policy().mixed_entropies(
        stack_a,
        stack_b,
        idx_a,
        idx_b,
        symmetrize=True,
        chunk_elements=MIXED_CHUNK_ELEMENTS,
    )

_QJSK_TRAITS = KernelTraits(
    framework="Information Theory",
    positive_definite=False,
    aligned=False,
    transitive=False,
    structure_patterns=("Global (Entropy)",),
    computing_model="Quantum Walks",
    captures_local=False,
    captures_global=True,
    notes="paper Section II-D; indefinite",
)


@register_kernel("QJSK", aliases=("qjsk-unaligned",))
class QJSKUnaligned(PairwiseKernel):
    """``k_QJSU(G_p, G_q) = exp(-mu * D_QJS(rho_p, rho_q))`` (Eq. 9)."""

    name = "QJSK"
    traits = _QJSK_TRAITS
    #: Prepared states are per-graph CTQW density matrices; padding is per
    #: pair — nothing about a pair's value sees the rest of the collection.
    collection_independent = True

    def __init__(self, mu: float = 1.0, *, hamiltonian: str = "laplacian") -> None:
        self.mu = check_in_range(mu, "mu", low=0.0, high=np.inf, low_inclusive=False)
        self.hamiltonian = hamiltonian

    def prepare(self, graphs: "list[Graph]") -> list:
        return [graph_density_matrix(g, hamiltonian=self.hamiltonian) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        size = max(state_a.shape[0], state_b.shape[0])
        divergence = quantum_jensen_shannon_divergence(
            pad_density_matrix(state_a, size), pad_density_matrix(state_b, size)
        )
        return float(np.exp(-self.mu * divergence))

    def _values_for_pairs(
        self,
        states_a: list,
        states_b: list,
        idx_a: np.ndarray,
        idx_b: np.ndarray,
    ) -> np.ndarray:
        """Kernel values for the pair list ``(idx_a[p], idx_b[p])``.

        Zero padding leaves the von Neumann entropy unchanged (the extra
        eigenvalues are exact zeros and ``0 log 0 = 0``), so padding the
        whole tile to its largest graph — instead of per pair — computes
        the same divergences while replacing ``3`` eigendecompositions
        per pair with one batched solve for all mixed states plus one
        per-graph pass.
        """
        size = max(s.shape[0] for s in list(states_a) + list(states_b))
        stack_a = _padded_stack(states_a, size)
        stack_b = _padded_stack(states_b, size)
        entropies_a = von_neumann_entropies(stack_a)
        entropies_b = von_neumann_entropies(stack_b)
        divergence = (
            _mixed_entropies_for_pairs(stack_a, stack_b, idx_a, idx_b)
            - 0.5 * entropies_a[idx_a]
            - 0.5 * entropies_b[idx_b]
        )
        np.clip(divergence, 0.0, QJSD_MAX, out=divergence)
        return np.exp(-self.mu * divergence)

    def block_values(self, states_a: list, states_b: list) -> np.ndarray:
        """Vectorized rectangular tile (see :meth:`_values_for_pairs`)."""
        return self._rectangular_from_pairs(
            states_a, states_b, self._values_for_pairs
        )

    def symmetric_block_values(self, states: list) -> np.ndarray:
        """Diagonal tile batching only the upper triangle's mixed states."""
        return self._symmetric_from_pairs(states, self._values_for_pairs)


@register_kernel("QJSK-AL", aliases=("qjsk-aligned",))
class QJSKAligned(PairwiseKernel):
    """``k_QJSA`` (Eq. 11): Umeyama-align the density matrices first.

    The correspondence matrix ``Q`` comes from the Umeyama spectral method
    on the two density matrices (paper Section II-D); the smaller matrix is
    zero-padded before matching.
    """

    name = "QJSK(A)"
    traits = KernelTraits(
        framework="Information Theory",
        positive_definite=False,
        aligned=True,
        transitive=False,
        structure_patterns=("Global (Entropy)",),
        computing_model="Quantum Walks",
        captures_local=False,
        captures_global=True,
        notes="pairwise Umeyama alignment; not transitive, still indefinite",
    )
    #: Umeyama matching and padding both happen per pair.
    collection_independent = True

    def __init__(self, mu: float = 1.0, *, hamiltonian: str = "laplacian") -> None:
        self.mu = check_in_range(mu, "mu", low=0.0, high=np.inf, low_inclusive=False)
        self.hamiltonian = hamiltonian

    def prepare(self, graphs: "list[Graph]") -> list:
        return [graph_density_matrix(g, hamiltonian=self.hamiltonian) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        size = max(state_a.shape[0], state_b.shape[0])
        rho_p = pad_density_matrix(state_a, size)
        rho_q = pad_density_matrix(state_b, size)
        q_matrix = umeyama_correspondence(rho_p, rho_q)
        aligned_q = permute_with(rho_q, q_matrix)
        divergence = quantum_jensen_shannon_divergence(rho_p, aligned_q)
        return float(np.exp(-self.mu * divergence))

    def _values_into(
        self, matrix: np.ndarray, states_a: list, states_b: list, pairs
    ) -> None:
        """Fill ``matrix[i, j]`` for every ``(i, j)`` in ``pairs``.

        The Umeyama matching itself stays per pair (a Hungarian solve on
        the pair's similarity), and crucially keeps the *per-pair*
        padding size — zero-padding enlarges the null space, and a
        different basis in that degenerate subspace could flip the
        matching, changing the kernel value beyond round-off. What is
        shared and batched: each state's padded eigendecomposition and
        entropy are computed once per (state, size) instead of once per
        pair, and all mixed-state entropies of a common size are solved
        with stacked ``eigvalsh`` calls.
        """
        cache: dict = {}

        # (padded matrix, |eigenvectors|, entropy) per (state, pad size).
        def prepared(state, size):
            key = (id(state), size)
            if key not in cache:
                padded = pad_density_matrix(state, size)
                _, vectors = eigh_sorted(padded)
                cache[key] = (padded, np.abs(vectors), von_neumann_entropy(padded))
            return cache[key]

        mixed_by_size: dict = {}
        slots_by_size: dict = {}
        base_by_size: dict = {}
        for i, j in pairs:
            state_a, state_b = states_a[i], states_b[j]
            size = max(state_a.shape[0], state_b.shape[0])
            rho_p, abs_u_p, entropy_p = prepared(state_a, size)
            rho_q, abs_u_q, entropy_q = prepared(state_b, size)
            _, cols = linear_sum_assignment(-(abs_u_p @ abs_u_q.T))
            aligned_q = rho_q[np.ix_(cols, cols)]
            mixed_by_size.setdefault(size, []).append((rho_p + aligned_q) / 2.0)
            slots_by_size.setdefault(size, []).append((i, j))
            base_by_size.setdefault(size, []).append(0.5 * (entropy_p + entropy_q))

        for size, mixed in mixed_by_size.items():
            baselines = np.asarray(base_by_size[size])
            entropies = np.empty(len(mixed))
            chunk = max(1, MIXED_CHUNK_ELEMENTS // max(1, size * size))
            for start in range(0, len(mixed), chunk):
                stop = min(start + chunk, len(mixed))
                entropies[start:stop] = von_neumann_entropies(
                    np.stack(mixed[start:stop])
                )
            divergence = np.clip(entropies - baselines, 0.0, QJSD_MAX)
            pair_values = np.exp(-self.mu * divergence)
            for (i, j), value in zip(slots_by_size[size], pair_values):
                matrix[i, j] = value

    def block_values(self, states_a: list, states_b: list) -> np.ndarray:
        """Rectangular tile (see :meth:`_values_into`)."""
        n_a, n_b = len(states_a), len(states_b)
        values = np.empty((n_a, n_b))
        self._values_into(
            values,
            states_a,
            states_b,
            ((i, j) for i in range(n_a) for j in range(n_b)),
        )
        return values

    def symmetric_block_values(self, states: list) -> np.ndarray:
        """Diagonal tile: Hungarian solves for the upper triangle only."""
        n = len(states)
        matrix = np.zeros((n, n))
        self._values_into(
            matrix, states, states, ((i, j) for i in range(n) for j in range(i, n))
        )
        upper = np.triu(matrix)
        return upper + np.triu(matrix, 1).T
