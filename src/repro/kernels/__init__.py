"""Graph kernels: the HAQJSK contribution and every Table III baseline."""

from repro.kernels.aligned_subtree import AlignedSubtreeKernel
from repro.kernels.base import (
    FeatureMapKernel,
    GraphKernel,
    KernelTraits,
    PairwiseKernel,
    cosine_scale,
    normalize_gram,
    normalize_gram_block,
    normalize_gram_inplace_tiled,
)
from repro.kernels.core_variants import (
    CoreVariantKernel,
    core_sp_kernel,
    core_wl_kernel,
)
from repro.kernels.graphlet import GraphletKernel, three_graphlet_counts
from repro.kernels.haqjsk import (
    FrozenAlignmentSystem,
    HAQJSKKernelA,
    HAQJSKKernelD,
    HierarchicalAligner,
)
from repro.kernels.haqjsk_attributed import (
    HAQJSKAttributedA,
    HAQJSKAttributedD,
    attributed_aligner,
)
from repro.kernels.jsd import JensenShannonKernel
from repro.kernels.jtqk import JensenTsallisQKernel
from repro.kernels.pyramid_match import PyramidMatchKernel
from repro.kernels.qjsk import QJSKAligned, QJSKUnaligned
from repro.kernels.random_walk import RandomWalkKernel
from repro.kernels.registry import (
    KernelSpec,
    as_spec,
    make,
    register_kernel,
    registered_kernels,
    supported_params,
)
from repro.kernels.renyi import RenyiEntropyKernel
from repro.kernels.shortest_path import ShortestPathKernel
from repro.kernels.wl import (
    WeisfeilerLehmanKernel,
    wl_feature_matrix,
    wl_label_sequences,
)

__all__ = [
    "AlignedSubtreeKernel",
    "CoreVariantKernel",
    "FeatureMapKernel",
    "FrozenAlignmentSystem",
    "GraphKernel",
    "GraphletKernel",
    "HAQJSKAttributedA",
    "HAQJSKAttributedD",
    "HAQJSKKernelA",
    "HAQJSKKernelD",
    "HierarchicalAligner",
    "JensenShannonKernel",
    "JensenTsallisQKernel",
    "KernelSpec",
    "KernelTraits",
    "PairwiseKernel",
    "PyramidMatchKernel",
    "QJSKAligned",
    "QJSKUnaligned",
    "RandomWalkKernel",
    "RenyiEntropyKernel",
    "ShortestPathKernel",
    "WeisfeilerLehmanKernel",
    "as_spec",
    "attributed_aligner",
    "core_sp_kernel",
    "core_wl_kernel",
    "cosine_scale",
    "make",
    "normalize_gram",
    "normalize_gram_block",
    "normalize_gram_inplace_tiled",
    "register_kernel",
    "registered_kernels",
    "supported_params",
    "three_graphlet_counts",
    "wl_feature_matrix",
    "wl_label_sequences",
]
