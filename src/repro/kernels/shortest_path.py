"""Shortest-path graph kernel (SPGK, Borgwardt & Kriegel 2005, ref. [14]).

``K(G_p, G_q)`` counts pairs of shortest paths with equal length and equal
endpoint labels — the delta-kernel instantiation, which admits an explicit
feature map over ``(label_u, label_v, distance)`` triples and is therefore
positive definite.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import FeatureMapKernel, KernelTraits
from repro.kernels.registry import register_kernel
from repro.utils.validation import check_positive_int


@register_kernel("SPGK", aliases=("shortest-path",))
class ShortestPathKernel(FeatureMapKernel):
    """SPGK with the delta kernel on (endpoint labels, hop distance).

    Parameters
    ----------
    max_distance:
        Distances above this are bucketed together, bounding the feature
        space on large-diameter graphs (paper datasets top out well below
        the default).
    use_labels:
        Compare endpoint labels (degrees for unlabelled graphs). Disable to
        get the pure path-length histogram kernel.
    """

    name = "SPGK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Paths)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
    )

    def __init__(self, *, max_distance: int = 30, use_labels: bool = True) -> None:
        self.max_distance = check_positive_int(max_distance, "max_distance", minimum=1)
        self.use_labels = bool(use_labels)

    def feature_matrix(self, graphs: "list[Graph]") -> np.ndarray:
        vocabulary: dict = {}
        rows = []
        for g in graphs:
            counts: dict = {}
            distances = g.shortest_path_lengths()
            labels = g.effective_labels() if self.use_labels else None
            n = g.n_vertices
            for u in range(n):
                row = distances[u]
                for v in range(u + 1, n):
                    d = int(row[v])
                    if d <= 0:
                        continue
                    d = min(d, self.max_distance)
                    if labels is None:
                        key = d
                    else:
                        a, b = int(labels[u]), int(labels[v])
                        key = (d, min(a, b), max(a, b))
                    counts[key] = counts.get(key, 0) + 1
            for key in counts:
                if key not in vocabulary:
                    vocabulary[key] = len(vocabulary)
            rows.append(counts)
        features = np.zeros((len(graphs), max(len(vocabulary), 1)))
        for i, counts in enumerate(rows):
            for key, value in counts.items():
                features[i, vocabulary[key]] = value
        return features
