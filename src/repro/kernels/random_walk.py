"""Classical random walk kernel (Kashima et al. 2003 / Gärtner 2003, ref. [7]).

The geometric random walk kernel counts matching walks of all lengths in
the direct product graph:

    K(G_p, G_q) = sum_{i,j} [ (I - lambda * A_x)^-1 ]_{ij}

with ``A_x`` the adjacency of the product graph and ``lambda`` small enough
for convergence. This is the canonical kernel exhibiting the *tottering*
problem the paper discusses (Section III-C, fifth point): walks may revisit
edges back and forth, inflating similarity. The tottering ablation bench
contrasts it with the CTQW-based kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel
from repro.utils.validation import check_in_range


@register_kernel("RWK", aliases=("random-walk",))
class RandomWalkKernel(PairwiseKernel):
    """Geometric random walk kernel on the (label-matched) product graph.

    Parameters
    ----------
    decay:
        Geometric weight ``lambda``; automatically shrunk per pair to
        ``min(decay, 0.9 / spectral_bound)`` so the Neumann series converges.
    use_labels:
        Restrict the product graph to vertex pairs with equal labels
        (degrees when unlabelled).
    """

    name = "RWK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Walks)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
        notes="suffers from tottering; ablation baseline",
    )
    #: prepare() shrinks the decay to the *collection's* worst spectral
    #: bound, so adding a denser graph changes every old pair's value —
    #: gram_extend must refuse.
    collection_independent = False

    def __init__(self, decay: float = 0.05, *, use_labels: bool = False) -> None:
        self.decay = check_in_range(decay, "decay", low=0.0, high=1.0, low_inclusive=False)
        self.use_labels = bool(use_labels)

    def prepare(self, graphs: "list[Graph]") -> list:
        states = []
        worst_row_sum = 0.0
        for g in graphs:
            labels = g.effective_labels() if self.use_labels else None
            skeleton = (g.adjacency > 0).astype(float)
            worst_row_sum = max(worst_row_sum, float(skeleton.sum(axis=1).max()))
            states.append((skeleton, labels))
        # One shared decay for the whole collection keeps the Gram PSD:
        # the product graph's spectral radius is at most the product of the
        # factors' max row sums.
        bound = worst_row_sum**2
        self._effective_decay = self.decay if bound <= 0 else min(self.decay, 0.9 / bound)
        return states

    def pair_value(self, state_a, state_b) -> float:
        adj_a, labels_a = state_a
        adj_b, labels_b = state_b
        product = np.kron(adj_a, adj_b)
        if labels_a is not None:
            mask = (labels_a[:, None] == labels_b[None, :]).astype(float).ravel()
            product = product * mask[:, None] * mask[None, :]
        size = product.shape[0]
        if size == 0:
            return 0.0
        system = np.eye(size) - self._effective_decay * product
        try:
            solved = np.linalg.solve(system, np.ones(size))
        except np.linalg.LinAlgError as exc:
            raise KernelError(f"random walk kernel system is singular: {exc}") from exc
        return float(solved.sum() / size)
