"""Core-variant kernel framework (Nikolentzos et al., IJCAI 2018, ref. [47]).

For any base kernel ``k``, the core variant is

    K_core(G_p, G_q) = sum_{c=0..c_max} k(core_c(G_p), core_c(G_q))

where ``core_c(G)`` is the c-core of ``G`` (maximal subgraph of minimum
degree c). Peeling the graph into its degeneracy hierarchy lets a local
kernel see progressively denser global regions. CORE-WL and CORE-SP in
Table IV are this wrapper around WLSK and SPGK.
"""

from __future__ import annotations

import numpy as np

from repro.api.context import context_for
from repro.errors import KernelError
from repro.graphs.graph import Graph
from repro.graphs.ops import degeneracy, k_core_subgraph
from repro.kernels.base import GraphKernel, KernelTraits
from repro.kernels.registry import register_kernel, scaled
from repro.kernels.shortest_path import ShortestPathKernel
from repro.kernels.wl import WeisfeilerLehmanKernel


class CoreVariantKernel(GraphKernel):
    """Sums a base kernel over the k-core hierarchy of both graphs.

    Empty cores (beyond a graph's degeneracy) contribute nothing for that
    graph; a core level enters the sum only when both graphs still have a
    non-empty core, matching the reference implementation.
    """

    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Subtrees)", "Degeneracy hierarchy"),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
        notes="sum of a PD base kernel over k-cores stays PD",
    )

    def __init__(self, base_kernel: GraphKernel, *, max_core: "int | None" = None):
        if not isinstance(base_kernel, GraphKernel):
            raise KernelError("base_kernel must be a GraphKernel")
        self.base_kernel = base_kernel
        self.max_core = max_core
        self.name = f"CORE {base_kernel.name}"

    def _compute_gram(self, graphs: "list[Graph]", *, engine=None) -> np.ndarray:
        n = len(graphs)
        highest = max(degeneracy(g) for g in graphs)
        if self.max_core is not None:
            highest = min(highest, int(self.max_core))
        total = np.zeros((n, n))
        for core_level in range(0, highest + 1):
            cores = []
            alive = []
            for index, g in enumerate(graphs):
                core_graph, members = k_core_subgraph(g, core_level)
                if core_graph.n_vertices > 0:
                    cores.append(core_graph)
                    alive.append(index)
            if len(alive) < 1:
                break
            block = self.base_kernel.gram(cores, ctx=context_for(engine=engine))
            for a, i in enumerate(alive):
                for b, j in enumerate(alive):
                    total[i, j] += block[a, b]
        return total


@register_kernel(
    "CORE WL",
    aliases=("core-wl",),
    defaults={"n_iterations": scaled(4, 10)},
)
def core_wl_kernel(
    n_iterations: int = 10, *, max_core: "int | None" = None
) -> CoreVariantKernel:
    """CORE WL — the Table IV baseline 6."""
    return CoreVariantKernel(
        WeisfeilerLehmanKernel(n_iterations), max_core=max_core
    )


@register_kernel("CORE SP", aliases=("core-sp",))
def core_sp_kernel(*, max_core: "int | None" = None) -> CoreVariantKernel:
    """CORE SP — the Table IV baseline 8."""
    return CoreVariantKernel(ShortestPathKernel(), max_core=max_core)
