"""Attributed HAQJSK kernels — the paper's stated future work.

Section V: "Our future work is to develop the proposed HAQJSK kernels one
step further, and integrate the vertex label information into the kernel
computation, resulting [in] new attributed HAQJSK kernels." These classes
realise that plan by swapping the aligner's vertex representations for the
label-augmented ones of
:class:`repro.alignment.attributed.AttributedDBExtractor`: vertices align
to a common prototype only when both their entropy-flow profile and their
label (or ``r``-hop label histogram, for ``radius > 0``) agree, so the
aligned structures — and through them the QJSD — become label-aware.

Everything downstream of the representations (hierarchical prototypes,
transitive correspondences, aligned adjacency/density matrices, per-level
``exp(-QJSD)`` sums) is inherited unchanged from the plain kernels, and so
are the Table I properties: the alignment is still "nearest shared
prototype", hence transitive, hence the positive-definiteness argument of
the paper's Lemma carries over verbatim.

On unlabelled graphs these kernels degrade gracefully to a degree-refined
variant of the plain HAQJSK kernels (Table II protocol: degrees stand in
for missing labels).
"""

from __future__ import annotations

import dataclasses

from repro.alignment.attributed import AttributedDBExtractor
from repro.kernels.haqjsk import (
    _HAQJSK_TRAITS,
    HAQJSKKernelA,
    HAQJSKKernelD,
    HierarchicalAligner,
)
from repro.kernels.registry import register_kernel, scaled

_ATTRIBUTED_TRAITS = dataclasses.replace(
    _HAQJSK_TRAITS,
    structure_patterns=(
        "Global Structures",
        "Local (Vertices)",
        "Vertex Labels",
    ),
    notes="attributed extension (paper Section V future work)",
)


def attributed_aligner(
    *,
    n_prototypes: int = 64,
    n_levels: int = 3,
    shrink_factor: float = 0.5,
    max_layers: int = 10,
    entropy: str = "shannon",
    label_weight: float = 1.0,
    radius: int = 0,
    renormalize_density: bool = True,
    hamiltonian: str = "laplacian",
    quantize_decimals: "int | None" = 9,
    seed: "int | None" = 0,
) -> HierarchicalAligner:
    """A :class:`HierarchicalAligner` over label-augmented representations.

    Accepts the plain aligner's knobs plus the two attributed ones:
    ``label_weight`` (scale of the label channels against the DB entropy
    channels) and ``radius`` (``0`` = own label only; ``r`` adds label
    histograms of every ``1..r``-hop neighbourhood).
    """
    extractor = AttributedDBExtractor(
        max_layers=max_layers,
        entropy=entropy,
        label_weight=label_weight,
        radius=radius,
    )
    return HierarchicalAligner(
        n_prototypes=n_prototypes,
        n_levels=n_levels,
        shrink_factor=shrink_factor,
        max_layers=max_layers,
        entropy=entropy,
        renormalize_density=renormalize_density,
        hamiltonian=hamiltonian,
        extractor=extractor,
        quantize_decimals=quantize_decimals,
        seed=seed,
    )


@register_kernel(
    "HAQJSK-L(A)",
    aliases=("haqjsk-attributed-a",),
    defaults={"n_prototypes": 32, "n_levels": 5, "max_layers": scaled(6, 10), "seed": 0},
    signature_from=attributed_aligner,
)
class HAQJSKAttributedA(HAQJSKKernelA):
    """Attributed HAQJSK(A): label-aware alignment, Eq. 26 on top.

    Same CTQW-on-aligned-adjacency construction as :class:`HAQJSKKernelA`,
    but the correspondence matrices come from label-augmented vertex
    representations, so only label-compatible vertices are merged into a
    shared prototype.
    """

    name = "HAQJSK-L(A)"
    traits = _ATTRIBUTED_TRAITS

    def __init__(self, **kwargs) -> None:
        super().__init__(aligner=attributed_aligner(**kwargs))


@register_kernel(
    "HAQJSK-L(D)",
    aliases=("haqjsk-attributed-d",),
    defaults={"n_prototypes": 32, "n_levels": 5, "max_layers": scaled(6, 10), "seed": 0},
    signature_from=attributed_aligner,
)
class HAQJSKAttributedD(HAQJSKKernelD):
    """Attributed HAQJSK(D): label-aware alignment, Eq. 29 on top."""

    name = "HAQJSK-L(D)"
    traits = _ATTRIBUTED_TRAITS

    def __init__(self, **kwargs) -> None:
        super().__init__(aligner=attributed_aligner(**kwargs))
