"""Pyramid match graph kernel (PMGK, Nikolentzos et al., AAAI 2017, ref. [48]).

Each vertex is embedded into ``[0, 1]^d`` using the absolute values of the
graph adjacency matrix's top-``d`` eigenvectors; the two vertex clouds are
then compared with the classic pyramid-match scheme: histograms at
resolutions ``2^l`` per axis, matched bottom-up with weights ``1/2^(L-l)``.
The pyramid match is a PD kernel over sets, and alignment here is implicit
(cell co-occupancy), not transitive.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel
from repro.utils.linalg import eigh_sorted
from repro.utils.validation import check_positive_int


@register_kernel("PMGK", aliases=("pyramid-match",))
class PyramidMatchKernel(PairwiseKernel):
    """PMGK with eigenvector embeddings and ``n_levels`` pyramid levels."""

    name = "PMGK"
    #: Histogram pyramids are built per graph from its own spectrum.
    collection_independent = True
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=True,
        transitive=False,
        structure_patterns=("Local (Vertices)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
        notes="implicit vertex alignment via histogram cell co-occupancy",
    )

    def __init__(self, *, dimensions: int = 4, n_levels: int = 3) -> None:
        self.dimensions = check_positive_int(dimensions, "dimensions", minimum=1)
        self.n_levels = check_positive_int(n_levels, "n_levels", minimum=1)

    def prepare(self, graphs: "list[Graph]") -> list:
        return [self._histogram_pyramid(self._embed(g)) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        # Pyramid match: intersections at the finest level count fully; each
        # coarser level adds newly-matched mass at half the weight.
        intersections = [
            float(np.minimum(ha, hb).sum()) for ha, hb in zip(state_a, state_b)
        ]
        value = intersections[-1]  # finest level, weight 1
        for level in range(len(intersections) - 1):
            weight = 1.0 / (2 ** (len(intersections) - 1 - level))
            newly = intersections[level] - intersections[level + 1]
            value += weight * newly
        return value

    def _embed(self, graph: Graph) -> np.ndarray:
        """Vertex embedding: |top-d eigenvectors| of the adjacency matrix."""
        values, vectors = eigh_sorted(graph.adjacency)
        order = np.argsort(-np.abs(values))[: self.dimensions]
        embedding = np.abs(vectors[:, order])
        if embedding.shape[1] < self.dimensions:
            pad = np.zeros((embedding.shape[0], self.dimensions - embedding.shape[1]))
            embedding = np.hstack([embedding, pad])
        return np.clip(embedding, 0.0, 1.0)

    def _histogram_pyramid(self, embedding: np.ndarray) -> list:
        """Cell-occupancy histograms at resolutions ``2^l``, coarse->fine."""
        pyramid = []
        for level in range(self.n_levels + 1):
            resolution = 2**level
            cells = np.clip(
                (embedding * resolution).astype(int), 0, resolution - 1
            )
            flat_index = np.zeros(embedding.shape[0], dtype=int)
            for axis in range(self.dimensions):
                flat_index = flat_index * resolution + cells[:, axis]
            histogram = np.bincount(flat_index, minlength=resolution**self.dimensions)
            pyramid.append(histogram.astype(float))
        return pyramid
