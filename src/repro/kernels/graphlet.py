"""Graphlet count kernel (GCGK, Shervashidze et al. 2009, ref. [45]).

Counts induced subgraphs on 3 vertices exactly (4 isomorphism types) and,
optionally, samples connected 4-vertex graphlets (6 connected types),
matching the paper's "graphlets of size 4" configuration at tractable cost.
Counts are normalised by the number of (sampled) subsets so graphs of
different orders are comparable.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import FeatureMapKernel, KernelTraits
from repro.kernels.registry import register_kernel, scaled
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

#: Canonical edge-count signatures of the 11 four-vertex graphlet types,
#: keyed by (n_edges, sorted degree sequence).
_FOUR_TYPES = {
    (0, (0, 0, 0, 0)): 0,  # empty
    (1, (0, 0, 1, 1)): 1,  # single edge
    (2, (0, 1, 1, 2)): 2,  # path P3 + isolate
    (2, (1, 1, 1, 1)): 3,  # two disjoint edges
    (3, (1, 1, 2, 2)): 4,  # path P4
    (3, (0, 2, 2, 2)): 5,  # triangle + isolate
    (3, (1, 1, 1, 3)): 6,  # star S3
    (4, (1, 2, 2, 3)): 7,  # paw (triangle + pendant)
    (4, (2, 2, 2, 2)): 8,  # 4-cycle
    (5, (2, 2, 3, 3)): 9,  # diamond
    (6, (3, 3, 3, 3)): 10,  # K4
}


def three_graphlet_counts(graph: Graph) -> np.ndarray:
    """Exact counts of the 4 three-vertex graphlet types, in closed form.

    Types: [empty, one-edge, path (2 edges), triangle]. Computed from the
    triangle count, wedge count and edge count rather than enumerating all
    ``C(n, 3)`` subsets.
    """
    n = graph.n_vertices
    skeleton = (graph.adjacency > 0).astype(float)
    m = graph.n_edges
    degrees = skeleton.sum(axis=1)
    triangles = float(np.trace(skeleton @ skeleton @ skeleton) / 6.0)
    wedges = float(np.sum(degrees * (degrees - 1)) / 2.0)  # paths incl. triangles*3
    paths = wedges - 3.0 * triangles
    one_edge = float(m * (n - 2)) - 2.0 * paths - 3.0 * triangles
    total = float(n * (n - 1) * (n - 2) / 6.0) if n >= 3 else 0.0
    empty = total - one_edge - paths - triangles
    return np.asarray([max(empty, 0.0), max(one_edge, 0.0), max(paths, 0.0), triangles])


def four_graphlet_type(subgraph_adjacency: np.ndarray) -> int:
    """Isomorphism type (0..10) of a 4-vertex induced subgraph."""
    skeleton = (subgraph_adjacency > 0).astype(int)
    n_edges = int(skeleton.sum() // 2)
    degree_signature = tuple(sorted(int(d) for d in skeleton.sum(axis=1)))
    return _FOUR_TYPES[(n_edges, degree_signature)]


@register_kernel(
    "GCGK",
    aliases=("graphlet",),
    defaults={"size": 4, "n_samples": scaled(300, 1000), "seed": 0},
)
class GraphletKernel(FeatureMapKernel):
    """GCGK over size-3 (exact) and optionally size-4 (sampled) graphlets.

    Parameters
    ----------
    size:
        3 or 4; size 4 stacks the sampled 4-graphlet histogram onto the
        exact 3-graphlet histogram (paper configuration: size 4).
    n_samples:
        Number of 4-subsets sampled per graph.
    seed:
        Sampling seed (fixed seed = deterministic Gram matrix).
    """

    name = "GCGK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Subgraphs)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
    )

    def __init__(self, size: int = 4, *, n_samples: int = 400, seed=0) -> None:
        size = check_positive_int(size, "size", minimum=3)
        if size not in (3, 4):
            from repro.errors import KernelError

            raise KernelError(f"graphlet size must be 3 or 4, got {size}")
        self.size = size
        self.n_samples = check_positive_int(n_samples, "n_samples", minimum=1)
        self.seed = seed

    @property
    def collection_independent(self) -> bool:
        """Size-3 counts are exact per graph; size-4 histograms draw from
        one rng sequence shared across the collection, so a graph's
        features depend on its position — gram_extend must refuse."""
        return self.size == 3

    def feature_matrix(self, graphs: "list[Graph]") -> np.ndarray:
        rng = as_rng(self.seed)
        rows = []
        for g in graphs:
            histogram = three_graphlet_counts(g)
            total3 = histogram.sum()
            histogram = histogram / total3 if total3 > 0 else histogram
            if self.size == 4:
                histogram = np.concatenate([histogram, self._four_histogram(g, rng)])
            rows.append(histogram)
        return np.asarray(rows)

    def _four_histogram(self, graph: Graph, rng) -> np.ndarray:
        n = graph.n_vertices
        counts = np.zeros(len(set(_FOUR_TYPES.values())))
        if n < 4:
            return counts
        adjacency = graph.adjacency
        total_subsets = n * (n - 1) * (n - 2) * (n - 3) // 24
        if total_subsets <= self.n_samples:
            subsets = itertools.combinations(range(n), 4)
        else:
            subsets = (
                tuple(rng.choice(n, size=4, replace=False))
                for _ in range(self.n_samples)
            )
        drawn = 0
        for subset in subsets:
            idx = np.asarray(subset)
            block = adjacency[np.ix_(idx, idx)]
            counts[four_graphlet_type(block)] += 1
            drawn += 1
        if drawn > 0:
            counts = counts / drawn
        return counts
