"""Weisfeiler-Lehman subtree kernel (WLSK, ref. [46]) and WL refinement.

The WL label-refinement machinery lives here and is shared by the WLSK,
CORE-WL, JTQK and ASK implementations: refinement iteration ``h`` maps each
vertex label to a new label encoding the multiset of its neighbours' labels,
so equal labels at iteration ``h`` identify isomorphic height-``h`` subtree
patterns.

Unlabelled graphs use vertex degrees as initial labels, per the paper's
Table II protocol.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels.base import FeatureMapKernel, KernelTraits
from repro.kernels.registry import register_kernel, scaled
from repro.utils.validation import check_positive_int


def wl_label_sequences(
    graphs: "list[Graph]", n_iterations: int
) -> "list[list[np.ndarray]]":
    """WL-refined label arrays with a vocabulary shared across graphs.

    Returns ``sequences`` with ``sequences[it][g]`` the integer label array
    of graph ``g`` at iteration ``it`` (``it = 0`` is the initial labels,
    compressed into the shared vocabulary). Labels from different iterations
    never collide, matching the standard WL feature construction.
    """
    n_iterations = check_positive_int(n_iterations, "n_iterations", minimum=0)
    vocabulary: dict = {}

    def intern(key) -> int:
        if key not in vocabulary:
            vocabulary[key] = len(vocabulary)
        return vocabulary[key]

    current = [
        np.asarray(
            [intern(("init", int(l))) for l in g.effective_labels()], dtype=int
        )
        for g in graphs
    ]
    sequences = [current]
    for iteration in range(1, n_iterations + 1):
        refined = []
        for g, labels in zip(graphs, sequences[-1]):
            neighbor_lists = g.neighbor_lists()
            new_labels = np.empty(g.n_vertices, dtype=int)
            for v in range(g.n_vertices):
                signature = (
                    iteration,
                    int(labels[v]),
                    tuple(sorted(int(labels[u]) for u in neighbor_lists[v])),
                )
                new_labels[v] = intern(signature)
            refined.append(new_labels)
        sequences.append(refined)
    return sequences


def wl_feature_matrix(graphs: "list[Graph]", n_iterations: int) -> np.ndarray:
    """Stacked WL label-count histograms over all iterations (``(N, D)``)."""
    sequences = wl_label_sequences(graphs, n_iterations)
    n_labels = 1 + max(
        (int(labels.max()) for per_iter in sequences for labels in per_iter if labels.size),
        default=-1,
    )
    features = np.zeros((len(graphs), n_labels))
    for per_iter in sequences:
        for g_index, labels in enumerate(per_iter):
            counts = np.bincount(labels, minlength=n_labels)
            features[g_index] += counts
    return features


@register_kernel("WLSK", aliases=("wl",), defaults={"n_iterations": scaled(4, 10)})
class WeisfeilerLehmanKernel(FeatureMapKernel):
    """WLSK: counts of matching WL subtree patterns (paper baseline 5).

    ``K(G_p, G_q) = <phi(G_p), phi(G_q)>`` where ``phi`` stacks label-count
    histograms over ``n_iterations`` WL refinements. The paper evaluates
    subtrees of height 10.
    """

    name = "WLSK"
    traits = KernelTraits(
        framework="R-convolution",
        positive_definite=True,
        aligned=False,
        transitive=False,
        structure_patterns=("Local (Subtrees)",),
        computing_model="Classical",
        captures_local=True,
        captures_global=False,
    )

    def __init__(self, n_iterations: int = 10) -> None:
        self.n_iterations = check_positive_int(n_iterations, "n_iterations", minimum=0)

    def feature_matrix(self, graphs: "list[Graph]") -> np.ndarray:
        return wl_feature_matrix(graphs, self.n_iterations)
