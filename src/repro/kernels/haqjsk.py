"""HAQJSK — the paper's primary contribution (Section III).

Two kernels over a collection ``G`` of un-attributed graphs:

* :class:`HAQJSKKernelA` (Definition 3.1, Eq. 26) — CTQW density matrices of
  the *hierarchical transitive aligned adjacency matrices*;
* :class:`HAQJSKKernelD` (Definition 3.2, Eq. 29) — the *hierarchical
  transitive aligned density matrices* directly.

Both sum ``exp(-QJSD)`` over hierarchy levels ``h = 1..H``. The alignment
pipeline (DB representations -> hierarchical prototypes -> correspondence
matrices -> aligned structures) lives in :class:`HierarchicalAligner` so the
two kernels, the examples, and the ablation benches share one
implementation.

Because the prototype system is fitted on the *whole* collection passed to
``gram`` (exactly the paper's protocol — alignment is defined over the graph
set ``G``), kernel values depend on the collection. The positive
definiteness and permutation-invariance claims of Table I are about this
collection-level construction and are verified empirically in
``benchmarks/bench_table1_properties.py``.

For the serving workload (newcomers arriving against a fixed reference
collection) both kernels additionally support a **frozen-prototype mode**:
``kernel.freeze(reference_graphs)`` fits the prototype system once, after
which any graphs are aligned against those fixed prototypes — values
become collection-independent and exact incremental Gram extension
(:meth:`~repro.kernels.base.GraphKernel.gram_extend`) applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alignment.correspondence import correspondence_matrices
from repro.backend import active_policy
from repro.alignment.depth_based import DBRepresentationExtractor
from repro.alignment.prototypes import PrototypeHierarchy, fit_prototype_hierarchy
from repro.alignment.transform import (
    AlignedGraphStructures,
    aligned_adjacency,
    aligned_density,
)
from repro.errors import KernelError
from repro.graphs.graph import Graph
from repro.graphs.hashing import collection_digest
from repro.kernels.base import MIXED_CHUNK_ELEMENTS, KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel, scaled
from repro.quantum.density import ctqw_density_matrix, graph_density_matrix
from repro.quantum.divergence import QJSD_MAX
from repro.utils.linalg import safe_xlogx
from repro.utils.rng import as_rng, spawn_seed
from repro.utils.validation import check_in_range, check_positive_int

@dataclass
class FrozenAlignmentSystem:
    """A fitted, reusable prototype/alignment system (frozen mode).

    Everything graph-independent that :meth:`HierarchicalAligner.transform`
    derives from a collection: the fitted DB extractor (which pins the
    layer count ``K``), one prototype hierarchy per DB dimension ``k``,
    and the static-column layout. Once frozen, *any* graph — including one
    never seen at fit time — can be aligned against these prototypes
    without refitting, which makes the HAQJSK kernels collection-
    independent: exactly the serving scenario of newcomers arriving
    against a fixed reference collection.

    The instance is a plain picklable value object, so a serving process
    can persist it in the artifact store and warm-restart from disk.
    """

    extractor: object
    hierarchies: "list[PrototypeHierarchy]"
    n_layers: int
    n_static: int
    #: Content digest of the reference collection the system was fitted
    #: on — mixed into the kernel fingerprint so Grams served against
    #: different references never share a store key. Only ``fit`` (the
    #: frozen path) pays for computing it; the one-shot per-collection
    #: path leaves it empty because nothing ever reads it there.
    reference_digest: str = ""


_HAQJSK_TRAITS = KernelTraits(
    framework="Information Theory",
    positive_definite=True,
    aligned=True,
    transitive=True,
    structure_patterns=("Global Structures", "Local (Vertices)"),
    computing_model="Quantum Walks",
    hierarchical=True,
    captures_local=True,
    captures_global=True,
    notes="paper Section III; PD via transitive alignment",
)


class HierarchicalAligner:
    """Transforms arbitrary-size graphs into fixed-size aligned structures.

    Implements paper Section III-A end to end:

    1. dataset-level DB layer count ``K`` (greatest shortest-path length,
       capped by ``max_layers``);
    2. for each DB dimension ``k = 1..K``: a hierarchical prototype system
       (level-1 count ``n_prototypes``, halving per level for ``n_levels``
       levels) fitted on the pooled vertex representations;
    3. per graph: level-h correspondence matrices and the aligned adjacency
       / density matrices, averaged over ``k`` (Eq. 22-25).

    Parameters
    ----------
    n_prototypes:
        ``|P^{1,k}|`` — the paper uses 256; pick ~2-4x the mean graph size.
    n_levels:
        Hierarchy depth ``H`` (paper: 5).
    max_layers:
        Cap on the DB layer count ``K``.
    entropy:
        Expansion-subgraph entropy: ``"shannon"`` (paper default, ref. [26])
        or ``"von_neumann"``.
    consistent_across_k:
        Warm-start the dimension-(k+1) κ-means from the dimension-k centers
        so prototype indexings stay consistent under the Eq. 23/25 average
        over k (DESIGN.md faithfulness note).
    renormalize_density:
        Rescale each aligned density matrix to unit trace (Eq. 21 does not
        preserve trace; the QJSD needs density matrices).
    hamiltonian:
        CTQW Hamiltonian for the original graphs' density matrices.
    extractor:
        Override the vertex-representation extractor. Must provide
        ``fit_transform(graphs) -> list[matrix]`` and ``n_layers_``; may
        expose ``n_static_`` trailing columns that are *not* DB layers
        (e.g. label channels — see
        :class:`repro.alignment.attributed.AttributedDBExtractor`) and are
        kept in every dimension-k slice. Mutually exclusive with
        ``max_layers``/``entropy`` customisation.
    quantize_decimals:
        Vertex representations are rounded to this many decimals before
        clustering. Recomputing a DB entropy on a permuted graph shifts
        the float sum by ~1e-16, which is enough to reorder the canonical
        (lexicographically sorted) pooled matrix and flip k-means++ picks
        — i.e. to break exact permutation invariance through pure
        round-off. Quantising far below signal scale (default 1e-9) makes
        the pooled multiset bitwise stable. ``None`` disables.
    seed:
        Seeds every κ-means; fixed seed means a fully deterministic aligner.
    """

    def __init__(
        self,
        *,
        n_prototypes: int = 64,
        n_levels: int = 3,
        shrink_factor: float = 0.5,
        max_layers: int = 10,
        entropy: str = "shannon",
        consistent_across_k: bool = True,
        renormalize_density: bool = True,
        hamiltonian: str = "laplacian",
        extractor=None,
        quantize_decimals: "int | None" = 9,
        seed: "int | None" = 0,
    ) -> None:
        self.n_prototypes = check_positive_int(n_prototypes, "n_prototypes", minimum=1)
        self.n_levels = check_positive_int(n_levels, "n_levels", minimum=1)
        self.shrink_factor = check_in_range(
            shrink_factor, "shrink_factor", low=0.0, high=1.0, low_inclusive=False
        )
        self.max_layers = check_positive_int(max_layers, "max_layers", minimum=1)
        self.entropy = entropy
        self.consistent_across_k = bool(consistent_across_k)
        self.renormalize_density = bool(renormalize_density)
        self.hamiltonian = hamiltonian
        self.extractor = extractor
        if quantize_decimals is not None:
            check_positive_int(quantize_decimals, "quantize_decimals", minimum=1)
        self.quantize_decimals = quantize_decimals
        self.seed = seed
        #: Fitted prototype system in frozen mode; ``None`` refits per call.
        self.frozen_: "FrozenAlignmentSystem | None" = None

    @property
    def is_frozen(self) -> bool:
        """True when a reference prototype system has been fitted."""
        return self.frozen_ is not None

    def fit(self, graphs: "list[Graph]") -> "HierarchicalAligner":
        """Freeze the prototype system on a *reference* collection.

        After fitting, :meth:`transform` aligns any graphs — including
        newcomers — against these fixed prototypes instead of refitting
        per call, so kernel values no longer depend on which graphs share
        a ``transform`` call. This is the frozen-prototype serving mode:
        exact Gram extension (``gram_extend``) becomes legal for the
        HAQJSK kernels at the price of alignment quality being anchored
        to the reference collection.
        """
        system, _ = self._fit_system(graphs)
        # Only the frozen path needs the reference digest (store keying);
        # hashing here keeps it off the unfrozen per-gram hot path.
        system.reference_digest = collection_digest(graphs)
        self.frozen_ = system
        return self

    def unfreeze(self) -> "HierarchicalAligner":
        """Drop the frozen system; transform refits per collection again."""
        self.frozen_ = None
        return self

    def transform(self, graphs: "list[Graph]") -> "list[AlignedGraphStructures]":
        """Aligned structures (Eq. 22-25) for every graph.

        Unfrozen (the paper's protocol): the prototype system is fitted
        on exactly the graphs passed in, so values are collection-level.
        Frozen: the stored reference system is applied to the graphs
        without refitting.
        """
        if not graphs:
            raise KernelError("HierarchicalAligner needs at least one graph")
        if self.frozen_ is not None:
            system = self.frozen_
            representations = [
                self._quantized(system.extractor.transform(g)) for g in graphs
            ]
        else:
            system, representations = self._fit_system(graphs)
        return self._apply_system(system, representations, graphs)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _quantized(self, matrix: np.ndarray) -> np.ndarray:
        """Round representations below signal scale (see class docstring)."""
        if self.quantize_decimals is None:
            return matrix
        return np.round(matrix, self.quantize_decimals)

    def _fit_system(
        self, graphs: "list[Graph]"
    ) -> "tuple[FrozenAlignmentSystem, list[np.ndarray]]":
        """Fit extractor + per-dimension hierarchies on one collection.

        Returns the fitted system and the collection's (quantised) vertex
        representations, so the one-shot path does not recompute them.
        """
        if not graphs:
            raise KernelError("HierarchicalAligner needs at least one graph")
        rng = as_rng(self.seed)
        extractor = self.extractor or DBRepresentationExtractor(
            max_layers=self.max_layers, entropy=self.entropy
        )
        representations = [
            self._quantized(r) for r in extractor.fit_transform(graphs)
        ]
        n_layers = extractor.n_layers_
        n_static = int(getattr(extractor, "n_static_", 0) or 0)

        # Canonicalise the pooled point order (lexicographic by the full
        # K-dimensional rows) so the fitted prototypes depend only on the
        # *multiset* of vertex representations — this is what makes the
        # kernels exactly permutation invariant (Table I claim): k-means++
        # samples by row index, so without sorting a vertex relabelling
        # could perturb the fit.
        full = np.vstack(representations)
        canonical = full[np.lexsort(full.T[::-1])]

        hierarchies: "list[PrototypeHierarchy]" = []
        warm_centers = None
        for k in range(1, n_layers + 1):
            pooled = self._slice_k(canonical, k, n_layers, n_static)
            hierarchy = fit_prototype_hierarchy(
                pooled,
                n_prototypes=self.n_prototypes,
                n_levels=self.n_levels,
                shrink_factor=self.shrink_factor,
                seed=spawn_seed(rng),
                init_centers=warm_centers,
            )
            hierarchies.append(hierarchy)
            if self.consistent_across_k and k < n_layers:
                warm_centers = self._extend_centers(
                    hierarchy, pooled, canonical[:, k], insert_at=k
                )
        system = FrozenAlignmentSystem(
            extractor=extractor,
            hierarchies=hierarchies,
            n_layers=n_layers,
            n_static=n_static,
        )
        return system, representations

    def _apply_system(
        self,
        system: "FrozenAlignmentSystem",
        representations: "list[np.ndarray]",
        graphs: "list[Graph]",
    ) -> "list[AlignedGraphStructures]":
        """Align every graph against an (already fitted) prototype system."""
        n_layers = system.n_layers
        n_static = system.n_static
        densities = [
            graph_density_matrix(g, hamiltonian=self.hamiltonian) for g in graphs
        ]
        n_graphs = len(graphs)
        adjacency_sums = [None] * n_graphs  # per graph: list over levels
        density_sums = [None] * n_graphs
        for k in range(1, n_layers + 1):
            hierarchy = system.hierarchies[k - 1]
            for p, graph in enumerate(graphs):
                c_levels = correspondence_matrices(
                    self._slice_k(representations[p], k, n_layers, n_static),
                    hierarchy,
                )
                for h, c_matrix in enumerate(c_levels):
                    # validate=False: adjacency/density/correspondence are
                    # all constructed above; the checks dominate otherwise.
                    a_hk = aligned_adjacency(
                        graph.adjacency, c_matrix, validate=False
                    )
                    rho_hk = aligned_density(
                        densities[p],
                        c_matrix,
                        renormalize=self.renormalize_density,
                        validate=False,
                    )
                    if adjacency_sums[p] is None:
                        adjacency_sums[p] = [None] * self.n_levels
                        density_sums[p] = [None] * self.n_levels
                    if adjacency_sums[p][h] is None:
                        adjacency_sums[p][h] = np.zeros_like(a_hk)
                        density_sums[p][h] = np.zeros_like(rho_hk)
                    adjacency_sums[p][h] += a_hk
                    density_sums[p][h] += rho_hk

        structures = []
        for p in range(n_graphs):
            adjacency_by_level = [m / n_layers for m in adjacency_sums[p]]
            density_by_level = [m / n_layers for m in density_sums[p]]
            structures.append(
                AlignedGraphStructures(adjacency_by_level, density_by_level)
            )
        return structures

    @staticmethod
    def _slice_k(
        matrix: np.ndarray, k: int, n_layers: int, n_static: int
    ) -> np.ndarray:
        """First k DB columns plus any static (label) tail columns."""
        if not n_static:
            return matrix[:, :k]
        return np.hstack([matrix[:, :k], matrix[:, n_layers:]])

    @staticmethod
    def _extend_centers(
        hierarchy, pooled_k: np.ndarray, new_values: np.ndarray, *, insert_at: int
    ) -> np.ndarray:
        """Warm-start centers for dimension k+1 from the dimension-k fit.

        The existing coordinates are the fitted level-1 centers; the new
        DB coordinate — the per-cluster mean of ``new_values`` (the
        (k+1)-th DB entropy over the pooled vertices) — is inserted at
        column ``insert_at``, i.e. *before* any static label columns so
        the layout matches the dimension-(k+1) slice.
        """
        assignments = hierarchy.assign_level1(pooled_k)
        centers_k = hierarchy.centers[0]
        m1 = centers_k.shape[0]
        new_column = np.zeros(m1)
        for cluster in range(m1):
            members = assignments == cluster
            if members.any():
                new_column[cluster] = float(new_values[members].mean())
        return np.hstack(
            [
                centers_k[:, :insert_at],
                new_column[:, None],
                centers_k[:, insert_at:],
            ]
        )


def _entropy_fast(matrix: np.ndarray) -> float:
    """Von Neumann entropy without validation overhead (hot path)."""
    values = np.linalg.eigvalsh(matrix)
    return float(-np.sum(safe_xlogx(np.clip(values, 0.0, None))))


def _entropies_fast(stack: np.ndarray) -> np.ndarray:
    """Batched :func:`_entropy_fast` over a ``(..., m, m)`` stack.

    The deepest hierarchy levels shrink to 1x1 and 2x2 matrices, where a
    LAPACK call per matrix is all dispatch overhead — those spectra have
    exact closed forms (for 2x2: ``mid +- sqrt(((a-c)/2)^2 + b^2)``),
    which agree with the solver to machine epsilon.
    """
    m = stack.shape[-1]
    if m == 1:
        values = stack[..., 0, 0, None]
    elif m == 2:
        a = stack[..., 0, 0]
        b = stack[..., 0, 1]
        c = stack[..., 1, 1]
        mid = (a + c) / 2.0
        radius = np.sqrt(((a - c) / 2.0) ** 2 + b * b)
        values = np.stack([mid - radius, mid + radius], axis=-1)
    else:
        values = np.linalg.eigvalsh(stack)
    # safe_xlogx clips to [0, inf) itself, matching _entropy_fast exactly.
    return -safe_xlogx(values).sum(axis=-1)


class _HAQJSKBase(PairwiseKernel):
    """Shared machinery: prepare per-level density matrices, sum exp(-QJSD).

    Prepared state per graph: ``(entropies, matrices)`` with one density
    matrix per hierarchy level; the pairwise value only needs one extra
    eigendecomposition (the mixed state) per level. Because alignment
    makes every level-h matrix the same ``(m_h, m_h)`` size across the
    collection, whole Gram tiles batch into ``(B, m_h, m_h)`` eigvalsh
    stacks — see :meth:`block_values`.
    """

    traits = _HAQJSK_TRAITS
    _extension_hint = (
        "Fit a frozen prototype system on a reference collection first "
        "(kernel.freeze(reference_graphs)) to enter the serving mode in "
        "which extension is exact."
    )

    def __init__(self, aligner: "HierarchicalAligner | None" = None, **aligner_kwargs):
        if aligner is not None and aligner_kwargs:
            raise KernelError("pass either a HierarchicalAligner or kwargs, not both")
        self.aligner = aligner or HierarchicalAligner(**aligner_kwargs)

    @property
    def collection_independent(self) -> bool:
        """True only in frozen-prototype mode (see :meth:`freeze`).

        Unfrozen, the prototype system is refitted on every collection
        (the paper's protocol), so a pair's value depends on which other
        graphs it shares a ``gram`` call with — extending a cached Gram
        would silently change the old entries, and ``gram_extend``
        refuses with a named :class:`~repro.errors.KernelError`.
        """
        return self.aligner.is_frozen

    def freeze(self, reference_graphs: "list[Graph]") -> "_HAQJSKBase":
        """Enter frozen-prototype serving mode.

        Fits the DB extractor and the hierarchical prototype system once
        on ``reference_graphs``; afterwards every ``prepare``/``gram``
        call aligns its graphs against those fixed prototypes instead of
        refitting, so newcomers can be evaluated against a reference
        collection incrementally (``gram_extend``) without perturbing it.
        """
        self._check_graphs(reference_graphs)
        self.aligner.fit(list(reference_graphs))
        return self

    def unfreeze(self) -> "_HAQJSKBase":
        """Back to the paper's per-collection fitting protocol."""
        self.aligner.unfreeze()
        return self

    def _fingerprint_extra(self) -> dict:
        """Frozen mode changes values, so the reference digest is part of
        the kernel's identity in the artifact store."""
        if self.aligner.is_frozen:
            return {"frozen_reference": self.aligner.frozen_.reference_digest}
        return {}

    def prepare(self, graphs: "list[Graph]") -> list:
        structures = self.aligner.transform(graphs)
        all_matrices = [self._level_matrices(s) for s in structures]
        n_levels = len(all_matrices[0]) if all_matrices else 0
        # One stacked eigvalsh per hierarchy level (every graph's level-h
        # matrix has the same aligned size) instead of a per-matrix loop.
        all_entropies = [[0.0] * n_levels for _ in all_matrices]
        for h in range(n_levels):
            level_entropies = _entropies_fast(
                np.stack([matrices[h] for matrices in all_matrices])
            )
            for p, value in enumerate(level_entropies):
                all_entropies[p][h] = float(value)
        return list(zip(all_entropies, all_matrices))

    def _check_levels(self, state_a, state_b) -> int:
        """Validate that two states share a hierarchy depth (Eq. 26/29).

        States from different ``prepare`` calls (or hand-built ones) can
        disagree on the level count; without this check the mismatch used
        to surface as an opaque ``IndexError`` deep in the level loop.
        """
        levels_a = len(state_a[1])
        levels_b = len(state_b[1])
        if levels_a != levels_b:
            raise KernelError(
                f"{self.name}: hierarchy level count mismatch between "
                f"prepared states ({levels_a} vs {levels_b} levels); both "
                f"states must come from one prepare() over one collection"
            )
        return levels_a

    def pair_value(self, state_a, state_b) -> float:
        entropies_a, matrices_a = state_a
        entropies_b, matrices_b = state_b
        n_levels = self._check_levels(state_a, state_b)
        total = 0.0
        for h in range(n_levels):
            mixed = (matrices_a[h] + matrices_b[h]) / 2.0
            divergence = (
                _entropy_fast(mixed)
                - 0.5 * entropies_a[h]
                - 0.5 * entropies_b[h]
            )
            divergence = min(max(divergence, 0.0), QJSD_MAX)
            total += float(np.exp(-divergence))
        return total

    def _values_for_pairs(
        self,
        states_a: list,
        states_b: list,
        idx_a: np.ndarray,
        idx_b: np.ndarray,
    ) -> np.ndarray:
        """Kernel values for the pair list ``(idx_a[p], idx_b[p])``.

        Per hierarchy level the matrices are stacked once into
        ``(n, m_h, m_h)`` arrays, the requested mixed states gathered by
        fancy indexing, and one batched entropy reduction per chunk —
        dispatched through the ambient
        :class:`~repro.backend.ComputePolicy` for ``m > 2``, while the
        deepest 1x1/2x2 levels keep the exact closed-form host spectra —
        yields all mixed entropies; per-graph entropies come precomputed
        from ``prepare``. Chunking bounds every intermediate by the
        memory budget. Taking an explicit pair list lets diagonal Gram
        tiles batch only the upper triangle — the same ``n(n+1)/2``
        solves the serial loop performs.
        """
        n_levels = self._check_levels(states_a[0], states_b[0])
        for state in list(states_a) + list(states_b):
            self._check_levels(states_a[0], state)
        entropies_a = np.asarray([s[0] for s in states_a])  # (n_a, H)
        entropies_b = np.asarray([s[0] for s in states_b])
        n_pairs = idx_a.size
        values = np.zeros(n_pairs)
        policy = active_policy()
        for h in range(n_levels):
            stack_a = np.stack([s[1][h] for s in states_a])  # (n_a, m, m)
            stack_b = np.stack([s[1][h] for s in states_b])
            if stack_a.shape[1:] != stack_b.shape[1:]:
                raise KernelError(
                    f"{self.name}: level {h + 1} aligned sizes differ "
                    f"({stack_a.shape[1:]} vs {stack_b.shape[1:]}); both "
                    f"states must come from one prepare() over one collection"
                )
            m = stack_a.shape[-1]
            if m > 2:
                # Aligned matrices are symmetric by construction, so the
                # policy path skips the symmetrise pass (same contract as
                # the historical _entropies_fast eigvalsh call).
                mixed_entropies = policy.mixed_entropies(
                    stack_a,
                    stack_b,
                    idx_a,
                    idx_b,
                    symmetrize=False,
                    chunk_elements=MIXED_CHUNK_ELEMENTS,
                )
                divergence = (
                    mixed_entropies
                    - 0.5 * entropies_a[idx_a, h]
                    - 0.5 * entropies_b[idx_b, h]
                )
                np.clip(divergence, 0.0, QJSD_MAX, out=divergence)
                values += np.exp(-divergence)
                continue
            # 1x1/2x2 spectra are closed-form on the host — cheaper than
            # any device round-trip and exact to machine epsilon.
            chunk = max(1, MIXED_CHUNK_ELEMENTS // max(1, m * m))
            for start in range(0, n_pairs, chunk):
                stop = min(start + chunk, n_pairs)
                rows = idx_a[start:stop]
                cols = idx_b[start:stop]
                mixed = stack_a[rows] + stack_b[cols]
                mixed *= 0.5
                divergence = (
                    _entropies_fast(mixed)
                    - 0.5 * entropies_a[rows, h]
                    - 0.5 * entropies_b[cols, h]
                )
                np.clip(divergence, 0.0, QJSD_MAX, out=divergence)
                values[start:stop] += np.exp(-divergence)
        return values

    def block_values(self, states_a: list, states_b: list) -> np.ndarray:
        """Vectorized rectangular tile (see :meth:`_values_for_pairs`)."""
        return self._rectangular_from_pairs(
            states_a, states_b, self._values_for_pairs
        )

    def symmetric_block_values(self, states: list) -> np.ndarray:
        """Vectorized diagonal tile batching only the upper triangle
        (mixed-state eigendecompositions dominate the per-pair cost)."""
        return self._symmetric_from_pairs(states, self._values_for_pairs)

    def _level_matrices(self, structure: AlignedGraphStructures) -> "list[np.ndarray]":
        raise NotImplementedError


@register_kernel(
    "HAQJSK(A)",
    aliases=("haqjsk-a",),
    defaults={"n_prototypes": 32, "n_levels": 5, "max_layers": scaled(6, 10), "seed": 0},
    signature_from=HierarchicalAligner,
    exclude=("extractor",),
)
class HAQJSKKernelA(_HAQJSKBase):
    """HAQJSK(A): QJSD between CTQW densities of aligned adjacencies (Eq. 26).

    For each level h, the CTQW (Laplacian Hamiltonian, degree initial state)
    is evolved on the weighted aligned adjacency ``Ā^h_p`` and its Eq. (5)
    density matrix ``θ̄^h_p`` enters the QJSD.
    """

    name = "HAQJSK(A)"

    def _level_matrices(self, structure: AlignedGraphStructures) -> "list[np.ndarray]":
        return [
            ctqw_density_matrix(
                structure.level_adjacency(h), hamiltonian=self.aligner.hamiltonian
            )
            for h in range(1, structure.n_levels + 1)
        ]


@register_kernel(
    "HAQJSK(D)",
    aliases=("haqjsk-d",),
    defaults={"n_prototypes": 32, "n_levels": 5, "max_layers": scaled(6, 10), "seed": 0},
    signature_from=HierarchicalAligner,
    exclude=("extractor",),
)
class HAQJSKKernelD(_HAQJSKBase):
    """HAQJSK(D): QJSD between aligned density matrices directly (Eq. 29)."""

    name = "HAQJSK(D)"

    def _level_matrices(self, structure: AlignedGraphStructures) -> "list[np.ndarray]":
        return [
            structure.level_density(h) for h in range(1, structure.n_levels + 1)
        ]
