"""Aligned subtree kernel (ASK, Bai et al., ICML 2015, ref. [23]).

For a pair of graphs the ASK (i) computes depth-based vertex
representations, (ii) finds a pairwise optimal vertex alignment by solving
a linear assignment on the representation distances, and (iii) accumulates,
for every aligned vertex pair, a subtree similarity (here: matching WL
labels over the subtree heights).

The alignment is *pairwise* — each pair of graphs is matched independently
— so it is not transitive, and the resulting Gram matrix is not guaranteed
PSD (the defect the HAQJSK construction removes). ``gram(...,
ensure_psd=True)`` is used before SVM training, matching common practice.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.alignment.depth_based import DBRepresentationExtractor
from repro.graphs.graph import Graph
from repro.kernels.base import KernelTraits, PairwiseKernel
from repro.kernels.registry import register_kernel, scaled
from repro.kernels.wl import wl_label_sequences
from repro.utils.validation import check_positive_int


@register_kernel(
    "ASK",
    defaults={"n_iterations": scaled(4, 10), "max_layers": scaled(6, 10)},
)
class AlignedSubtreeKernel(PairwiseKernel):
    """ASK: count WL-subtree agreements between optimally aligned vertices.

    Parameters
    ----------
    n_iterations:
        Subtree height (paper: up to 50; WL vocabularies saturate far
        earlier on the benchmark graphs).
    max_layers:
        DB-representation depth used for the vertex alignment step.
    """

    name = "ASK"
    traits = KernelTraits(
        framework="Information Theory",
        positive_definite=False,
        aligned=True,
        transitive=False,
        structure_patterns=("Local (Vertices)", "Local (Subtrees)"),
        computing_model="Quantum Walks",
        captures_local=True,
        captures_global=False,
        notes="pairwise Hungarian alignment; not transitive",
    )
    #: The DB layer count K is chosen from the whole collection (greatest
    #: shortest-path length, capped): a new large-diameter graph deepens
    #: every old graph's representation and moves the Hungarian matching —
    #: gram_extend must refuse.
    collection_independent = False

    def __init__(self, *, n_iterations: int = 10, max_layers: int = 10) -> None:
        self.n_iterations = check_positive_int(n_iterations, "n_iterations", minimum=1)
        self.max_layers = check_positive_int(max_layers, "max_layers", minimum=1)

    def prepare(self, graphs: "list[Graph]") -> list:
        extractor = DBRepresentationExtractor(max_layers=self.max_layers)
        representations = extractor.fit_transform(graphs)
        sequences = wl_label_sequences(graphs, self.n_iterations)
        states = []
        for g_index in range(len(graphs)):
            label_stack = np.stack(
                [per_iter[g_index] for per_iter in sequences], axis=1
            )  # (n_vertices, n_iterations + 1)
            states.append((representations[g_index], label_stack))
        return states

    def pair_value(self, state_a, state_b) -> float:
        reps_a, labels_a = state_a
        reps_b, labels_b = state_b
        # Optimal assignment on squared representation distances.
        diffs = reps_a[:, None, :] - reps_b[None, :, :]
        cost = np.sum(diffs**2, axis=2)
        rows, cols = linear_sum_assignment(cost)
        # Each aligned pair contributes the number of WL iterations at which
        # their subtree labels agree (isomorphic height-h subtrees).
        agreements = (labels_a[rows] == labels_b[cols]).sum()
        return float(agreements)
