"""The kernel registry: string-addressable, declarative kernel construction.

Historically the mapping from Table IV row labels ("HAQJSK(D)", "WLSK",
...) to configured :class:`~repro.kernels.base.GraphKernel` instances
lived in ``repro.experiments.kernel_zoo`` — an experiments-layer detail
that serving, the CLI and library users all needed. This module promotes
it to a first-class public API:

* each kernel module registers its classes (or factory functions) with
  the :func:`register_kernel` decorator, declaring scale-aware defaults;
* a :class:`KernelSpec` — a frozen ``(name, params)`` value object — is
  the declarative description of a kernel: validated against the
  registered signature at construction, round-trippable to/from JSON,
  and the canonical input of configuration fingerprints recorded in
  model bundles and experiment reports;
* :func:`make` builds the kernel a spec (or a bare name plus keyword
  parameters) describes.

Every lookup failure is a named :class:`~repro.errors.KernelSpecError`
listing what *is* registered — replacing the bare ``KeyError`` /
``TypeError`` a dictionary-based factory would raise.
"""

from __future__ import annotations

import inspect
import json
import os
from dataclasses import dataclass

from repro.errors import KernelSpecError

#: Environment variable requesting paper-scale hyperparameters (shared
#: with the experiment harness; ``repro.experiments.config.full_scale``
#: delegates here so there is exactly one definition).
FULL_SCALE_ENV_VAR = "REPRO_FULL_SCALE"


def full_scale() -> bool:
    """True when the environment requests paper-scale settings."""
    return os.environ.get(FULL_SCALE_ENV_VAR, "") == "1"


class ScaledDefault:
    """A registered default that depends on the active experiment scale.

    Resolved at :func:`make` time, so flipping ``REPRO_FULL_SCALE``
    switches every registered kernel's hyperparameters without touching
    any spec — exactly the behaviour the old ``kernel_zoo`` hardcoded.
    """

    def __init__(self, scaled_value, full_value) -> None:
        self.scaled_value = scaled_value
        self.full_value = full_value

    def __call__(self):
        return self.full_value if full_scale() else self.scaled_value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScaledDefault({self.scaled_value!r}, {self.full_value!r})"


def scaled(scaled_value, full_value) -> ScaledDefault:
    """Shorthand used by the per-module registrations."""
    return ScaledDefault(scaled_value, full_value)


#: JSON-representable parameter types a spec may carry (round-trip
#: fidelity is part of the KernelSpec contract).
_JSON_SCALARS = (bool, int, float, str, type(None))


@dataclass(frozen=True)
class RegisteredKernel:
    """One registry entry: how to build a kernel and what it accepts."""

    name: str
    factory: object
    parameters: "tuple[str, ...]"
    defaults: "tuple[tuple[str, object], ...]"
    aliases: "tuple[str, ...]"
    description: str = ""

    def resolved_params(self, params: "dict") -> dict:
        """``params`` completed with the registered (scale-aware) defaults."""
        merged = dict(params)
        for key, default in self.defaults:
            if key not in merged:
                merged[key] = default() if callable(default) else default
        return merged

    def build(self, params: "dict"):
        return self.factory(**self.resolved_params(params))


#: normalised lookup key -> entry (canonical names and aliases both map).
_REGISTRY: "dict[str, RegisteredKernel]" = {}
#: canonical names in registration order (the user-facing listing).
_CANONICAL: "list[str]" = []


def _normalize(name: str) -> str:
    return str(name).strip().lower()


def _signature_parameters(callable_obj, exclude: "tuple[str, ...]") -> tuple:
    """Accepted keyword-parameter names of a factory or class.

    Classes with a ``**kwargs`` constructor (the HAQJSK family forwards
    to its aligner) must register with ``signature_from=`` so the
    accepted set stays explicit and spec validation stays strict.
    """
    target = callable_obj.__init__ if inspect.isclass(callable_obj) else callable_obj
    names = []
    for parameter in inspect.signature(target).parameters.values():
        if parameter.name in ("self", *exclude):
            continue
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            raise KernelSpecError(
                f"cannot infer the accepted parameters of "
                f"{callable_obj!r}: its signature has *args/**kwargs — "
                f"register it with signature_from= naming an explicit "
                f"signature"
            )
        names.append(parameter.name)
    return tuple(names)


def register_kernel(
    name: str,
    *,
    aliases: "tuple[str, ...]" = (),
    defaults: "dict | None" = None,
    signature_from=None,
    exclude: "tuple[str, ...]" = (),
    description: str = "",
):
    """Class/function decorator adding a kernel to the registry.

    Parameters
    ----------
    name:
        Canonical name (the Table IV row label where one exists).
    aliases:
        Extra lookup names; resolution is case-insensitive throughout.
    defaults:
        Parameter defaults applied when a spec omits them. Values may be
        callables (see :func:`scaled`) resolved at build time — this is
        where the scale-aware hyperparameters of the old kernel zoo live.
    signature_from:
        Callable whose signature defines the accepted parameters, for
        factories whose own signature is ``**kwargs``.
    exclude:
        Signature parameters that are not spec-addressable (non-JSON
        objects like a pre-built aligner).
    """

    def decorate(obj):
        parameters = _signature_parameters(signature_from or obj, exclude)
        unknown_defaults = set(defaults or {}) - set(parameters)
        if unknown_defaults:
            raise KernelSpecError(
                f"kernel {name!r}: defaults {sorted(unknown_defaults)} are "
                f"not accepted parameters {parameters}"
            )
        entry = RegisteredKernel(
            name=name,
            factory=obj,
            parameters=parameters,
            defaults=tuple(sorted((defaults or {}).items())),
            aliases=tuple(aliases),
            description=description or (inspect.getdoc(obj) or "").split("\n")[0],
        )
        for key in (name, *aliases):
            normalized = _normalize(key)
            existing = _REGISTRY.get(normalized)
            if existing is not None and existing.name != entry.name:
                raise KernelSpecError(
                    f"kernel name {key!r} is already registered "
                    f"(by {existing.name!r})"
                )
            _REGISTRY[normalized] = entry
        if entry.name not in _CANONICAL:
            _CANONICAL.append(entry.name)
        return obj

    return decorate


def _ensure_populated() -> None:
    # Registrations live in the kernel modules themselves; importing the
    # package runs them all. Lazy so `repro.kernels.registry` itself has
    # no import-time dependency on any kernel module.
    if not _REGISTRY:
        import repro.kernels  # noqa: F401  (import side effect)


def registered_kernels() -> "tuple[str, ...]":
    """Canonical registered kernel names, in registration order."""
    _ensure_populated()
    return tuple(_CANONICAL)


def kernel_entry(name: str) -> RegisteredKernel:
    """The registry entry for ``name`` (canonical or alias, any case).

    Raises :class:`KernelSpecError` listing the registered kernels when
    the name is unknown — the named replacement for a bare ``KeyError``.
    """
    _ensure_populated()
    entry = _REGISTRY.get(_normalize(name))
    if entry is None:
        raise KernelSpecError(
            f"unknown kernel {name!r}; registered kernels: "
            f"{', '.join(registered_kernels())}"
        )
    return entry


def supported_params(name: str) -> "tuple[str, ...]":
    """The parameter names ``name``'s registered signature accepts."""
    return kernel_entry(name).parameters


def lenient_spec(name: str, **params) -> "KernelSpec":
    """A spec from ``params`` with unsupported ones silently dropped.

    The historical zoo contract: every caller passed
    ``n_prototypes``/``seed`` regardless of the kernel, and kernels that
    do not take them ignored them. The strict :class:`KernelSpec`
    constructor refuses unknown params; callers carrying a fixed flag
    set across a heterogeneous roster (the serve CLI, the Table IV
    sweep, the legacy ``make_kernel``) filter through here instead.
    """
    accepted = set(kernel_entry(name).parameters)
    return KernelSpec(
        name, {key: value for key, value in params.items() if key in accepted}
    )


@dataclass(frozen=True, init=False)
class KernelSpec:
    """A frozen, declarative description of one configured kernel.

    ``KernelSpec("HAQJSK(D)", n_prototypes=32)`` is a *value*: hashable,
    comparable, JSON round-trippable (:meth:`to_json` / :meth:`from_json`)
    and validated against the registered signature at construction — an
    unknown kernel name or an unexpected parameter raises a named
    :class:`~repro.errors.KernelSpecError` instead of surfacing later as
    a ``TypeError`` inside some constructor. Model bundles and experiment
    reports persist the :meth:`resolved` spec, which is the canonical
    fingerprint input for declaratively-built kernels.
    """

    name: str
    params: "tuple[tuple[str, object], ...]"

    def __init__(self, name: str, params: "dict | None" = None, **kwargs) -> None:
        merged = dict(params or {})
        merged.update(kwargs)
        entry = kernel_entry(name)
        unexpected = set(merged) - set(entry.parameters)
        if unexpected:
            raise KernelSpecError(
                f"kernel {entry.name!r} does not accept "
                f"{sorted(unexpected)}; accepted parameters: "
                f"{', '.join(entry.parameters) or '(none)'}"
            )
        for key, value in merged.items():
            if not isinstance(value, _JSON_SCALARS):
                raise KernelSpecError(
                    f"kernel {entry.name!r}: parameter {key}={value!r} is "
                    f"not a JSON scalar — specs must round-trip through "
                    f"JSON, pass configured objects to the class directly"
                )
        object.__setattr__(self, "name", entry.name)
        object.__setattr__(self, "params", tuple(sorted(merged.items())))

    # ------------------------------------------------------------------ #
    # Construction / serialisation
    # ------------------------------------------------------------------ #

    @property
    def param_dict(self) -> dict:
        return dict(self.params)

    def with_params(self, **params) -> "KernelSpec":
        """A new spec with ``params`` overriding/extending this one's."""
        return KernelSpec(self.name, {**self.param_dict, **params})

    def resolved(self) -> "KernelSpec":
        """The canonical fully-explicit spec: registered defaults filled.

        Resolving pins scale-dependent defaults to their current values,
        so a resolved spec rebuilds the identical kernel regardless of
        the environment it is later read in — which is why bundles and
        reports record the resolved form.
        """
        entry = kernel_entry(self.name)
        return KernelSpec(self.name, entry.resolved_params(self.param_dict))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": self.param_dict}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, record: "dict") -> "KernelSpec":
        if not isinstance(record, dict) or "name" not in record:
            raise KernelSpecError(
                f"a KernelSpec record needs 'name' (and optional 'params') "
                f"keys, got {record!r}"
            )
        extras = set(record) - {"name", "params"}
        if extras:
            raise KernelSpecError(
                f"unexpected KernelSpec record keys {sorted(extras)}"
            )
        return cls(record["name"], record.get("params") or {})

    @classmethod
    def from_json(cls, payload: str) -> "KernelSpec":
        try:
            record = json.loads(payload)
        except (TypeError, ValueError) as exc:
            raise KernelSpecError(
                f"KernelSpec payload is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(record)

    # ------------------------------------------------------------------ #
    # Use
    # ------------------------------------------------------------------ #

    def make(self):
        """Build the configured :class:`~repro.kernels.base.GraphKernel`."""
        return kernel_entry(self.name).build(self.param_dict)

    def fingerprint(self) -> str:
        """Stable hex digest of the *resolved* spec — the content identity
        declaratively-built kernels are recorded under."""
        import hashlib

        return hashlib.sha256(
            self.resolved().to_json().encode()
        ).hexdigest()

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({rendered})"


def as_spec(spec_or_name, **params) -> KernelSpec:
    """Coerce a :class:`KernelSpec` or a name (+ params) into a spec."""
    if isinstance(spec_or_name, KernelSpec):
        return spec_or_name.with_params(**params) if params else spec_or_name
    if isinstance(spec_or_name, str):
        return KernelSpec(spec_or_name, params)
    raise KernelSpecError(
        f"expected a KernelSpec or a kernel name, got "
        f"{type(spec_or_name).__name__}"
    )


def make(spec_or_name, **params):
    """Build a kernel from a spec or a registered name plus parameters.

    The declarative entry point::

        kernel = repro.kernels.make("HAQJSK(D)", n_prototypes=32)
        kernel = repro.kernels.make(KernelSpec("WLSK"))
    """
    return as_spec(spec_or_name, **params).make()
