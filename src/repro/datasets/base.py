"""Dataset container and statistics (paper Table II columns)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class DatasetStatistics:
    """The per-dataset summary the paper reports in Table II."""

    name: str
    max_vertices: int
    mean_vertices: float
    mean_edges: float
    n_graphs: int
    n_vertex_labels: "int | None"
    n_classes: int
    domain: str

    def as_row(self) -> dict:
        """Table II row as a plain dict (used by the reporting module)."""
        return {
            "Datasets": self.name,
            "Max # vertices": self.max_vertices,
            "Mean # vertices": round(self.mean_vertices, 2),
            "Mean # edges": round(self.mean_edges, 2),
            "# graphs": self.n_graphs,
            "# vertex labels": self.n_vertex_labels if self.n_vertex_labels else "-",
            "# classes": self.n_classes,
            "Description": self.domain,
        }


class GraphDataset:
    """A named collection of graphs with integer class targets.

    Parameters
    ----------
    name:
        Dataset identifier (Table II row name).
    graphs:
        The graphs; all non-empty.
    targets:
        Integer class label per graph.
    domain:
        ``"Bio"``, ``"CV"`` or ``"SN"``, per Table II's Description row.
    """

    def __init__(
        self,
        name: str,
        graphs: "list[Graph]",
        targets,
        *,
        domain: str = "",
        description: str = "",
    ) -> None:
        target_arr = np.asarray(targets, dtype=int)
        if len(graphs) != target_arr.size:
            raise DatasetError(
                f"{name}: {len(graphs)} graphs but {target_arr.size} targets"
            )
        if len(graphs) == 0:
            raise DatasetError(f"{name}: dataset is empty")
        for i, g in enumerate(graphs):
            if not isinstance(g, Graph):
                raise DatasetError(f"{name}: item {i} is not a Graph")
        self.name = name
        self.graphs = list(graphs)
        self.targets = target_arr
        self.domain = domain
        self.description = description

    def __len__(self) -> int:
        return len(self.graphs)

    def __repr__(self) -> str:
        return (
            f"GraphDataset({self.name!r}, n={len(self)}, "
            f"classes={self.n_classes})"
        )

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels."""
        return int(np.unique(self.targets).size)

    def statistics(self) -> DatasetStatistics:
        """Measured Table II statistics of this instance."""
        vertex_counts = np.asarray([g.n_vertices for g in self.graphs])
        edge_counts = np.asarray([g.n_edges for g in self.graphs])
        labelled = all(g.labels is not None for g in self.graphs)
        n_labels = None
        if labelled:
            values = set()
            for g in self.graphs:
                values.update(int(x) for x in g.labels)
            n_labels = len(values)
        return DatasetStatistics(
            name=self.name,
            max_vertices=int(vertex_counts.max()),
            mean_vertices=float(vertex_counts.mean()),
            mean_edges=float(edge_counts.mean()),
            n_graphs=len(self.graphs),
            n_vertex_labels=n_labels,
            n_classes=self.n_classes,
            domain=self.domain,
        )

    def subset(self, indices) -> "GraphDataset":
        """New dataset restricted to ``indices`` (order preserved)."""
        idx = np.asarray(indices, dtype=int)
        if idx.size == 0:
            raise DatasetError(f"{self.name}: subset would be empty")
        return GraphDataset(
            self.name,
            [self.graphs[i] for i in idx],
            self.targets[idx],
            domain=self.domain,
            description=self.description,
        )

    def subsample(self, n: int, *, seed=None) -> "GraphDataset":
        """A stratified, deterministic subsample of exactly ``min(n, len)``
        graphs.

        Per-class quotas are proportional to class frequency (largest-
        remainder rounding, remainder ties broken by class label), so the
        subsample preserves the class balance as closely as ``n`` allows;
        members are then drawn without replacement with the seeded RNG.
        Deterministic for a fixed ``(n, seed)`` — the benchmark harness
        uses this instead of ad-hoc ``graphs[:n]`` slicing, which skews
        toward whatever class happens to be stored first.
        """
        if n < 1:
            raise DatasetError(f"subsample size must be >= 1, got {n}")
        n = min(int(n), len(self))
        rng = as_rng(seed)
        classes, counts = np.unique(self.targets, return_counts=True)
        exact = counts * (n / len(self))
        quotas = np.floor(exact).astype(int)
        remainders = exact - quotas
        # Largest remainder first; np.argsort is stable, so equal
        # remainders resolve by class order — no RNG in the allocation.
        for cls_index in np.argsort(-remainders, kind="stable"):
            if quotas.sum() >= n:
                break
            if quotas[cls_index] < counts[cls_index]:
                quotas[cls_index] += 1
        # Rounding can still undershoot when some classes saturated;
        # top up from classes with spare members, largest first.
        while quotas.sum() < n:
            spare = np.flatnonzero(quotas < counts)
            quotas[spare[np.argmax(counts[spare] - quotas[spare])]] += 1
        chosen: list = []
        for cls, quota in zip(classes, quotas):
            if quota < 1:
                continue
            members = np.flatnonzero(self.targets == cls)
            chosen.extend(
                rng.choice(members, size=quota, replace=False).tolist()
            )
        return self.subset(sorted(chosen))

    def stratified_subsample(self, n_per_class: int, *, seed=None) -> "GraphDataset":
        """Up to ``n_per_class`` graphs per class, drawn without replacement.

        Used by the scaled benchmark harness; deterministic for fixed seed.
        """
        if n_per_class < 1:
            raise DatasetError(f"n_per_class must be >= 1, got {n_per_class}")
        rng = as_rng(seed)
        chosen: list = []
        for cls in np.unique(self.targets):
            members = np.flatnonzero(self.targets == cls)
            take = min(n_per_class, members.size)
            chosen.extend(rng.choice(members, size=take, replace=False).tolist())
        return self.subset(sorted(chosen))
