"""The twelve Table II benchmark datasets as seeded synthetic generators.

No network access means the TU/CV datasets themselves cannot be downloaded;
each loader below builds a drop-in replacement whose Table II statistics
(graph counts, vertex/edge means, class and label counts, domain) match the
paper, and whose classes differ by the kind of multi-scale topology the
respective real dataset is known for (ring systems for the molecule sets,
community structure for PPIs, cliques for the social sets, skeletons for
the shape sets). DESIGN.md's substitution table records the rationale;
``experiments.table2`` prints measured-vs-paper statistics side by side.

Loaders accept:

* ``scale`` — fraction of the paper's graph count (>= 2 graphs per class
  is enforced so CV remains possible);
* ``size_scale`` — multiplier on vertex counts (used by the scaled kernel
  benches for the two largest datasets);
* ``seed`` — master seed; every instance derives its own stream.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import DatasetStatistics, GraphDataset
from repro.datasets.synthetic import (
    ClassRecipe,
    broadcast_tree,
    build_dataset,
    community_graph,
    ego_collaboration,
    grow_weighted,
    limb_forest,
    make_weighted_template,
    molecule_like,
    perturbed_template,
    triangulate_chords,
)
from repro.errors import DatasetError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.utils.rng import as_rng
from repro.utils.validation import check_in_range

#: Paper Table II, verbatim. COLLAB's class count is printed as 2 in the
#: paper but the dataset (Yanardag & Vishwanathan 2015) has 3 classes and
#: the paper's accuracy (~79%) matches 3-class results; we follow the
#: dataset (see EXPERIMENTS.md note).
PAPER_STATISTICS = {
    "MUTAG": DatasetStatistics("MUTAG", 28, 17.93, 19.79, 188, 7, 2, "Bio"),
    "PPIs": DatasetStatistics("PPIs", 218, 109.63, 531.50, 219, None, 5, "Bio"),
    "CATH2": DatasetStatistics("CATH2", 568, 308.03, 1254.8, 190, None, 2, "Bio"),
    "PTC": DatasetStatistics("PTC", 109, 25.56, 25.96, 344, 19, 2, "Bio"),
    "GatorBait": DatasetStatistics("GatorBait", 545, 348.72, 796.11, 100, None, 30, "CV"),
    "BAR31": DatasetStatistics("BAR31", 220, 95.42, 94.59, 300, None, 20, "CV"),
    "BSPHERE31": DatasetStatistics("BSPHERE31", 227, 99.83, 56.58, 300, None, 20, "CV"),
    "GEOD31": DatasetStatistics("GEOD31", 380, 57.24, 99.01, 300, None, 20, "CV"),
    "IMDB-B": DatasetStatistics("IMDB-B", 136, 19.77, 96.53, 1000, None, 2, "SN"),
    "IMDB-M": DatasetStatistics("IMDB-M", 89, 13.00, 65.93, 1500, None, 3, "SN"),
    "RED-B": DatasetStatistics("RED-B", 3782, 429.62, 497.75, 2000, None, 2, "SN"),
    "COLLAB": DatasetStatistics("COLLAB", 492, 74.49, 2457.50, 5000, None, 3, "SN"),
}

DATASET_NAMES = tuple(PAPER_STATISTICS)


def load_dataset(
    name: str, *, scale: float = 1.0, size_scale: float = 1.0, seed: int = 0
) -> GraphDataset:
    """Build the named dataset (see module docstring for parameters)."""
    if name not in _LOADERS:
        known = ", ".join(DATASET_NAMES)
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")
    check_in_range(scale, "scale", low=0.0, high=1.0, low_inclusive=False)
    check_in_range(size_scale, "size_scale", low=0.0, high=1.0, low_inclusive=False)
    paper = PAPER_STATISTICS[name]
    n_graphs = max(int(round(paper.n_graphs * scale)), 2 * paper.n_classes)
    return _LOADERS[name](n_graphs, size_scale, seed)


def _scaled(base: float, size_scale: float, minimum: int = 5) -> int:
    return max(int(round(base * size_scale)), minimum)


def _normal_size(rng, mean: float, spread: float, low: int, high: int) -> int:
    return int(np.clip(round(rng.normal(mean, spread)), low, high))


# --------------------------------------------------------------------- #
# Bio datasets
# --------------------------------------------------------------------- #


def _make_mutag(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Mutagenic (poly-ring) vs non-mutagenic (chain-dominated) molecules."""
    mean = 17.93 * size_scale

    def non_mutagenic(rng):
        n = _normal_size(rng, mean, 3.5, max(int(8 * size_scale), 6), _scaled(28, size_scale, 10))
        return molecule_like(rng, n_vertices=n, n_rings=int(rng.integers(0, 2)))

    def mutagenic(rng):
        n = _normal_size(rng, mean, 3.5, max(int(8 * size_scale), 6), _scaled(28, size_scale, 10))
        return molecule_like(rng, n_vertices=n, n_rings=int(rng.integers(2, 4)))

    recipes = [
        ClassRecipe(0, non_mutagenic, "chain-dominated molecules"),
        ClassRecipe(1, mutagenic, "fused-ring molecules"),
    ]
    return build_dataset(
        "MUTAG", recipes, n_graphs, seed=seed, domain="Bio", n_vertex_labels=7,
        description="nitroaromatic mutagenicity surrogate",
    )


def _make_ppis(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Five PPI classes distinguished by community count at fixed density."""
    mean = 109.63 * size_scale

    def make_class(n_communities: int):
        # Classes differ both in module count and in interaction density,
        # like the real PPI collections (which WLSK separates at ~88% in
        # the paper — a pure community-count signal would be invisible to
        # degree-based kernels). The densities average to the paper's
        # Table II edge density (calibrated; block-size jitter makes the
        # same-community fraction exceed 1/k, hence the low nominal values).
        target_density = 0.040 + 0.012 * (n_communities - 2)

        def build(rng):
            n = _normal_size(rng, mean, 18 * size_scale, 20, _scaled(218, size_scale, 40))
            p_out = 0.018
            p_in = min(
                n_communities * (target_density - p_out * (1 - 1 / n_communities)),
                0.95,
            )
            return community_graph(
                rng, n_vertices=n, n_communities=n_communities,
                p_in=max(p_in, 0.05), p_out=p_out,
            )

        return build

    recipes = [
        ClassRecipe(c, make_class(c + 2), f"{c + 2} functional modules")
        for c in range(5)
    ]
    return build_dataset(
        "PPIs", recipes, n_graphs, seed=seed, domain="Bio",
        description="protein-protein interaction surrogate",
    )


def _make_cath2(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Two protein-fold classes of *overlapping* contact-map graphs.

    Both classes are small-world contact maps (as real CATH folds are);
    they differ in rewiring rate and local neighbourhood width, with the
    per-instance parameters drawn from overlapping ranges so the task sits
    in the paper's 67-88% accuracy band instead of saturating — an earlier
    geometric-vs-small-world recipe was separable by every kernel at 100%.
    """
    mean = 308.03 * size_scale

    def fold(rng, rewire_low, rewire_high, k_choices):
        n = _normal_size(rng, mean, 50 * size_scale, 30, _scaled(568, size_scale, 60))
        k = int(rng.choice(k_choices))
        rewire = float(rng.uniform(rewire_low, rewire_high))
        return gen.watts_strogatz(max(n, 12), k, rewire, seed=rng)

    def alpha_like(rng):
        return fold(rng, 0.02, 0.12, (8, 8, 10))

    def beta_like(rng):
        return fold(rng, 0.08, 0.25, (8, 10, 10))

    recipes = [
        ClassRecipe(0, alpha_like, "mainly-alpha-like contact maps"),
        ClassRecipe(1, beta_like, "mainly-beta-like folds"),
    ]
    return build_dataset(
        "CATH2", recipes, n_graphs, seed=seed, domain="Bio",
        description="CATH protein class surrogate",
    )


def _make_ptc(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Carcinogenicity surrogate: heavily overlapping molecule classes.

    The real PTC(MR) task is intrinsically noisy (best published accuracies
    ~60%); the two recipes overlap in ring count so chance-beating but
    modest accuracy is the expected regime.
    """
    mean = 25.56 * size_scale

    def negative(rng):
        n = _normal_size(rng, mean, 7, 8, _scaled(109, size_scale, 20))
        rings = int(rng.choice([0, 1, 1, 2]))
        return molecule_like(rng, n_vertices=n, n_rings=rings, ring_size=5)

    def positive(rng):
        n = _normal_size(rng, mean, 7, 8, _scaled(109, size_scale, 20))
        rings = int(rng.choice([1, 1, 2, 3]))
        return molecule_like(rng, n_vertices=n, n_rings=rings, ring_size=6)

    recipes = [
        ClassRecipe(0, negative, "non-carcinogenic surrogate"),
        ClassRecipe(1, positive, "carcinogenic surrogate"),
    ]
    return build_dataset(
        "PTC", recipes, n_graphs, seed=seed, domain="Bio", n_vertex_labels=19,
        description="PTC(MR) carcinogenicity surrogate",
    )


# --------------------------------------------------------------------- #
# Computer-vision shape datasets
# --------------------------------------------------------------------- #


def _shape_class_recipes(
    *,
    n_classes: int,
    template_vertices,
    size_sampler,
    finalize=None,
    rewire_fraction: float = 0.02,
    concentration: float = 1.2,
    seed: int,
) -> "list[ClassRecipe]":
    """Shape-dataset pattern: per-class weighted template, proportion-
    preserving growth, plus light rewiring noise.

    Real shape classes (fish silhouettes, articulated objects) share their
    skeleton's *branching topology* and *limb proportions* across views
    while vertex counts vary with sampling resolution. Each class draws a
    random-tree template with a Dirichlet edge-weight profile once
    (:func:`repro.datasets.synthetic.make_weighted_template`); instances
    grow it to an independently drawn size with a single multinomial
    allocation (:func:`repro.datasets.synthetic.grow_weighted`) so the
    proportions are class-invariant — a fixed-size template would leak the
    class through the graph order, exactly the cue the unaligned QJSK
    baseline exploits, while uniform subdivision would wash the proportions
    out entirely.
    """
    recipes = []
    for class_index in range(n_classes):
        template_rng = as_rng(
            int(np.random.SeedSequence([seed, 7919, class_index]).generate_state(1)[0])
        )
        template = make_weighted_template(
            template_rng,
            n_vertices=template_vertices(class_index, template_rng),
            concentration=concentration,
        )

        def build(rng, _template=template):
            grown = grow_weighted(_template, size_sampler(rng), rng)
            noisy = perturbed_template(grown, rng, rewire_fraction=rewire_fraction)
            if finalize is not None:
                noisy = finalize(noisy, rng)
            return noisy

        recipes.append(ClassRecipe(class_index, build, f"shape class {class_index}"))
    return recipes


def _make_gatorbait(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """30 fish-skeleton classes; triangulated skeletons (e/v ~ 2.28)."""

    def size_sampler(rng) -> int:
        return _normal_size(rng, 348.72 * size_scale, 35 * size_scale, 30,
                            _scaled(545, size_scale, 60))

    recipes = _shape_class_recipes(
        n_classes=30,
        template_vertices=lambda c, rng: 14 + c % 10,
        size_sampler=size_sampler,
        finalize=lambda g, rng: triangulate_chords(
            g, rng, int(1.28 * g.n_vertices)
        ),
        concentration=0.7,
        seed=seed,
    )
    return build_dataset(
        "GatorBait", recipes, n_graphs, seed=seed, domain="CV",
        description="fish shape skeleton surrogate",
    )


def _make_bar31(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """20 articulated-shape classes; tree-like skeletons (e ~ v - 1)."""

    def size_sampler(rng) -> int:
        return _normal_size(rng, 95.42 * size_scale, 14 * size_scale, 20,
                            _scaled(220, size_scale, 40))

    recipes = _shape_class_recipes(
        n_classes=20,
        template_vertices=lambda c, rng: 10 + c % 6,
        size_sampler=size_sampler,
        seed=seed,
    )
    return build_dataset(
        "BAR31", recipes, n_graphs, seed=seed, domain="CV",
        description="articulated shape skeleton surrogate",
    )


def _make_bsphere31(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """20 shape classes of sparse *forests* (mean edges < mean vertices)."""

    def size_sampler(rng) -> int:
        return _normal_size(rng, 99.83 * size_scale, 14 * size_scale, 20,
                            _scaled(227, size_scale, 40))

    recipes = []
    for class_index in range(20):
        class_rng = as_rng(
            int(np.random.SeedSequence([seed, 104729, class_index]).generate_state(1)[0])
        )
        n_limbs = 2 + class_index % 5
        limb_weights = class_rng.dirichlet(np.full(n_limbs, 1.2))

        def build(rng, _weights=limb_weights):
            return limb_forest(
                rng, n_vertices=size_sampler(rng), limb_weights=_weights
            )

        recipes.append(
            ClassRecipe(class_index, build, f"forest shape class {class_index}")
        )
    return build_dataset(
        "BSPHERE31", recipes, n_graphs, seed=seed, domain="CV",
        description="sphere-projection shape surrogate (forests)",
    )


def _make_geod31(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """20 geodesic-shape classes; lightly triangulated small skeletons."""

    def size_sampler(rng) -> int:
        return _normal_size(rng, 57.24 * size_scale, 9 * size_scale, 15,
                            _scaled(380, size_scale, 30))

    recipes = _shape_class_recipes(
        n_classes=20,
        template_vertices=lambda c, rng: 9 + c % 5,
        size_sampler=size_sampler,
        finalize=lambda g, rng: triangulate_chords(
            g, rng, int(0.75 * g.n_vertices)
        ),
        seed=seed,
    )
    return build_dataset(
        "GEOD31", recipes, n_graphs, seed=seed, domain="CV",
        description="geodesic distance shape surrogate",
    )


# --------------------------------------------------------------------- #
# Social-network datasets
# --------------------------------------------------------------------- #


def _make_imdb_b(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Movie-genre ego networks: few large cliques vs many small cliques.

    The clique-count and clique-size ranges of the two classes overlap
    (an action movie can have three casts, a romance two), keeping the
    task in the paper's ~63-74% band rather than saturating.
    """

    def action(rng):
        n_cliques = int(rng.integers(1, 4))
        return ego_collaboration(
            rng, n_cliques=n_cliques,
            clique_low=max(int(6 * size_scale), 3),
            clique_high=max(int(16 * size_scale), 5),
            overlap=0.35,
        )

    def romance(rng):
        n_cliques = int(rng.integers(2, 6))
        return ego_collaboration(
            rng, n_cliques=n_cliques,
            clique_low=max(int(4 * size_scale), 3),
            clique_high=max(int(11 * size_scale), 4),
            overlap=0.5,
        )

    recipes = [
        ClassRecipe(0, action, "few large casts"),
        ClassRecipe(1, romance, "many small casts"),
    ]
    return build_dataset(
        "IMDB-B", recipes, n_graphs, seed=seed, domain="SN",
        description="actor ego-network surrogate (binary)",
    )


def _make_imdb_m(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Three genre classes with heavily overlapping cast structure.

    Real IMDB-M is the hardest of the SN sets (paper accuracies ~43-51%
    for 3 classes): genre only shifts the *distribution* of cast counts
    and sizes. Each class here is a mixture over 1-3 cliques with
    class-dependent mixture weights, so single instances are often
    ambiguous by construction.
    """

    def ego(rng, clique_weights):
        n_cliques = 1 + int(rng.choice(3, p=clique_weights))
        return ego_collaboration(
            rng, n_cliques=n_cliques,
            clique_low=max(int(5 * size_scale), 3),
            clique_high=max(int(12 * size_scale), 4),
            overlap=0.45,
        )

    recipes = [
        ClassRecipe(0, lambda rng: ego(rng, (0.6, 0.3, 0.1)), "mostly one cast"),
        ClassRecipe(1, lambda rng: ego(rng, (0.25, 0.5, 0.25)), "mostly two casts"),
        ClassRecipe(2, lambda rng: ego(rng, (0.1, 0.3, 0.6)), "mostly three casts"),
    ]
    return build_dataset(
        "IMDB-M", recipes, n_graphs, seed=seed, domain="SN",
        description="actor ego-network surrogate (3 genres)",
    )


def _make_red_b(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Reddit threads: deep discussion trees vs star-like Q&A trees."""

    def thread_size(rng) -> int:
        size = rng.lognormal(mean=np.log(429.62 * size_scale) - 0.32, sigma=0.8)
        return int(np.clip(size, max(int(40 * size_scale), 10),
                           _scaled(3782, size_scale, 100)))

    def add_cross_links(graph: Graph, rng) -> Graph:
        adjacency = np.array(graph.adjacency)
        n = graph.n_vertices
        for _ in range(int(0.16 * n)):
            a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
            if a != b:
                adjacency[a, b] = adjacency[b, a] = 1.0
        return Graph(adjacency)

    def discussion(rng):
        tree = broadcast_tree(rng, n_vertices=thread_size(rng), hub_bias=0.6)
        return add_cross_links(tree, rng)

    def question_answer(rng):
        tree = broadcast_tree(rng, n_vertices=thread_size(rng), hub_bias=1.8)
        return add_cross_links(tree, rng)

    recipes = [
        ClassRecipe(0, discussion, "discussion threads (deep)"),
        ClassRecipe(1, question_answer, "Q&A threads (star-like)"),
    ]
    return build_dataset(
        "RED-B", recipes, n_graphs, seed=seed, domain="SN",
        description="Reddit thread surrogate",
    )


def _make_collab(n_graphs: int, size_scale: float, seed: int) -> GraphDataset:
    """Research-field collaboration egos (3 classes, very dense).

    Clique-count ranges overlap between adjacent fields (paper accuracies
    top out near 79%, so the classes must not be cleanly separable).
    """

    def high_energy(rng):
        return ego_collaboration(
            rng, n_cliques=int(rng.integers(1, 4)),
            clique_low=max(int(40 * size_scale), 5),
            clique_high=max(int(88 * size_scale), 8),
            overlap=0.4,
        )

    def condensed_matter(rng):
        return ego_collaboration(
            rng, n_cliques=int(rng.integers(2, 7)),
            clique_low=max(int(18 * size_scale), 4),
            clique_high=max(int(42 * size_scale), 6),
            overlap=0.5,
        )

    def astro(rng):
        return ego_collaboration(
            rng, n_cliques=int(rng.integers(4, 9)),
            clique_low=max(int(13 * size_scale), 3),
            clique_high=max(int(30 * size_scale), 5),
            overlap=0.6,
        )

    recipes = [
        ClassRecipe(0, high_energy, "High Energy Physics"),
        ClassRecipe(1, condensed_matter, "Condensed Matter"),
        ClassRecipe(2, astro, "Astrophysics"),
    ]
    return build_dataset(
        "COLLAB", recipes, n_graphs, seed=seed, domain="SN",
        description="scientific collaboration ego surrogate",
    )


_LOADERS = {
    "MUTAG": _make_mutag,
    "PPIs": _make_ppis,
    "CATH2": _make_cath2,
    "PTC": _make_ptc,
    "GatorBait": _make_gatorbait,
    "BAR31": _make_bar31,
    "BSPHERE31": _make_bsphere31,
    "GEOD31": _make_geod31,
    "IMDB-B": _make_imdb_b,
    "IMDB-M": _make_imdb_m,
    "RED-B": _make_red_b,
    "COLLAB": _make_collab,
}
