"""Machinery for class-structured synthetic graph datasets.

The reproduction environment has no network access to the TU repository, so
the Table II datasets are replaced by seeded generators (see DESIGN.md's
substitution table). Each dataset is a list of :class:`ClassRecipe` — one
per class — whose ``build(rng)`` produces a single graph. The builder takes
care of per-instance seeding (dataset seed + class + index), balanced class
counts, and optional degree-correlated vertex labels.

Design goal: classes must differ by *multi-scale topology* (motif content,
community structure, degree profile, global shape) rather than by trivial
size cues, because size-invariant comparison is exactly what the aligned
kernels are supposed to win at. Every recipe therefore draws sizes from the
same class-independent distribution unless the real dataset's classes
genuinely differ in size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.base import GraphDataset
from repro.errors import DatasetError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ops import disjoint_union
from repro.utils.rng import as_rng

GraphBuilder = Callable[[np.random.Generator], Graph]


@dataclass(frozen=True)
class ClassRecipe:
    """One class of a synthetic dataset: a name plus a seeded graph builder."""

    label: int
    build: GraphBuilder
    description: str = ""


def build_dataset(
    name: str,
    recipes: "list[ClassRecipe]",
    n_graphs: int,
    *,
    seed: int,
    domain: str = "",
    n_vertex_labels: "int | None" = None,
    description: str = "",
) -> GraphDataset:
    """Materialise a dataset from class recipes.

    Graphs are distributed over classes as evenly as possible (earlier
    classes get the remainder), and each instance derives its RNG from
    ``(seed, class, index)`` so any subset of the dataset is reproducible
    independent of generation order.
    """
    if not recipes:
        raise DatasetError(f"{name}: need at least one class recipe")
    if n_graphs < len(recipes):
        raise DatasetError(
            f"{name}: n_graphs={n_graphs} smaller than the class count {len(recipes)}"
        )
    base = n_graphs // len(recipes)
    remainder = n_graphs % len(recipes)
    graphs: list = []
    targets: list = []
    for class_index, recipe in enumerate(recipes):
        count = base + (1 if class_index < remainder else 0)
        for instance in range(count):
            rng = as_rng(_instance_seed(seed, class_index, instance))
            graph = recipe.build(rng)
            graph = _ensure_nonempty(graph, rng)
            if n_vertex_labels is not None:
                graph = gen.attach_random_labels(graph, n_vertex_labels, seed=rng)
            graphs.append(graph)
            targets.append(recipe.label)
    return GraphDataset(
        name, graphs, targets, domain=domain, description=description
    )


def _instance_seed(seed: int, class_index: int, instance: int) -> int:
    """Stable per-instance seed from (dataset, class, instance)."""
    mix = np.random.SeedSequence([int(seed), int(class_index), int(instance)])
    return int(mix.generate_state(1)[0])


def _ensure_nonempty(graph: Graph, rng: np.random.Generator) -> Graph:
    """Guarantee at least 2 vertices and 1 edge (kernels reject empties)."""
    if graph.n_vertices >= 2 and graph.n_edges >= 1:
        return graph
    return gen.path_graph(max(graph.n_vertices, 2))


# --------------------------------------------------------------------- #
# Reusable structural building blocks for the registry's recipes
# --------------------------------------------------------------------- #


def molecule_like(
    rng: np.random.Generator,
    *,
    n_vertices: int,
    n_rings: int,
    ring_size: int = 6,
) -> Graph:
    """Chain-of-rings chemistry-flavoured graphs (MUTAG/PTC recipes).

    ``n_rings`` fused/spaced rings joined by paths, padded with tree
    branches up to ``n_vertices``. Ring count is the class-discriminative
    motif (aromatic systems vs aliphatic chains).
    """
    pieces: list = []
    for _ in range(max(n_rings, 0)):
        size = max(3, ring_size + int(rng.integers(-1, 2)))
        pieces.append(gen.cycle_graph(size))
    used = sum(p.n_vertices for p in pieces)
    if used < n_vertices:
        tail = n_vertices - used
        pieces.append(gen.random_tree(tail, seed=rng) if tail > 1 else gen.path_graph(2))
    if not pieces:
        pieces.append(gen.random_tree(max(n_vertices, 2), seed=rng))
    graph = disjoint_union(pieces)
    adjacency = np.array(graph.adjacency)
    # Connect consecutive pieces with single bonds to make one molecule.
    offsets = np.cumsum([0] + [p.n_vertices for p in pieces])
    for piece_index in range(len(pieces) - 1):
        lo_a, hi_a = int(offsets[piece_index]), int(offsets[piece_index + 1])
        lo_b, hi_b = int(offsets[piece_index + 1]), int(offsets[piece_index + 2])
        u = int(rng.integers(lo_a, hi_a))
        v = int(rng.integers(lo_b, hi_b))
        adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency)


def community_graph(
    rng: np.random.Generator,
    *,
    n_vertices: int,
    n_communities: int,
    p_in: float,
    p_out: float,
) -> Graph:
    """Planted-partition graph with randomly jittered block sizes."""
    if n_communities < 1:
        raise DatasetError("n_communities must be >= 1")
    cuts = np.sort(rng.choice(max(n_vertices - 1, 1), size=n_communities - 1, replace=False)) + 1 \
        if n_communities > 1 else np.asarray([], dtype=int)
    sizes = np.diff(np.concatenate([[0], cuts, [n_vertices]])).tolist()
    sizes = [max(int(s), 1) for s in sizes]
    return gen.planted_partition(sizes, p_in, p_out, seed=rng)


def ego_collaboration(
    rng: np.random.Generator,
    *,
    n_cliques: int,
    clique_low: int,
    clique_high: int,
    overlap: float,
) -> Graph:
    """Union-of-cliques ego networks (IMDB/COLLAB recipes).

    ``n_cliques`` cliques of sizes in ``[clique_low, clique_high]`` share a
    fraction ``overlap`` of their members with a central pool, mimicking
    actor/author collaboration ego nets (dense, high clustering).
    """
    sizes = [int(rng.integers(clique_low, clique_high + 1)) for _ in range(n_cliques)]
    pool = max(sizes) + int(sum(sizes) * (1.0 - overlap))
    members: list = []
    cursor = max(sizes[0], 1)
    used = list(range(cursor))
    members.append(used)
    total = cursor
    for size in sizes[1:]:
        shared = min(int(round(size * overlap)), total)
        chosen = rng.choice(total, size=shared, replace=False).tolist() if shared else []
        fresh = list(range(total, total + size - shared))
        total += size - shared
        members.append(chosen + fresh)
    adjacency = np.zeros((total, total))
    for clique in members:
        for a_pos, u in enumerate(clique):
            for v in clique[a_pos + 1 :]:
                adjacency[u, v] = adjacency[v, u] = 1.0
    del pool
    return Graph(adjacency)


def broadcast_tree(
    rng: np.random.Generator,
    *,
    n_vertices: int,
    hub_bias: float,
) -> Graph:
    """Preferential-attachment trees (Reddit-thread recipes).

    ``hub_bias`` > 1 concentrates replies on existing hubs (Q&A threads,
    star-like); ``hub_bias`` close to 0 yields deep discussion chains.
    """
    n = max(int(n_vertices), 2)
    adjacency = np.zeros((n, n))
    degrees = np.zeros(n)
    degrees[0] = 1e-9
    for new in range(1, n):
        weights = degrees[:new] ** hub_bias if hub_bias > 0 else np.ones(new)
        weights = np.where(weights <= 0, 1e-9, weights)
        parent = int(rng.choice(new, p=weights / weights.sum()))
        adjacency[new, parent] = adjacency[parent, new] = 1.0
        degrees[parent] += 1.0
        degrees[new] += 1.0
    return Graph(adjacency)


def subdivide_to_size(
    template: Graph, target_n: int, rng: np.random.Generator
) -> Graph:
    """Grow a template by repeated edge subdivision until ``target_n``.

    Subdividing an edge (replace ``u-v`` by ``u-w-v``) preserves the
    template's branching topology exactly — the graph analogue of sampling
    the same shape at a finer resolution. The shape-dataset recipes use
    this so that instances of one class share articulation structure while
    their *sizes* vary, as they do for real shape graphs (a class must not
    be identifiable from its vertex count alone).
    """
    adjacency_lists = {u: set() for u in range(template.n_vertices)}
    for u, v, _ in template.edges():
        adjacency_lists[u].add(v)
        adjacency_lists[v].add(u)
    n = template.n_vertices
    edges = [(u, v) for u, v, _ in template.edges()]
    while n < target_n and edges:
        index = int(rng.integers(0, len(edges)))
        u, v = edges[index]
        w = n
        n += 1
        adjacency_lists[u].discard(v)
        adjacency_lists[v].discard(u)
        adjacency_lists[w] = {u, v}
        adjacency_lists[u].add(w)
        adjacency_lists[v].add(w)
        edges[index] = (u, w)
        edges.append((w, v))
    adjacency = np.zeros((n, n))
    for u, neighbors in adjacency_lists.items():
        for v in neighbors:
            adjacency[u, v] = 1.0
    return Graph((adjacency + adjacency.T > 0).astype(float))


@dataclass(frozen=True)
class WeightedTemplate:
    """A shape class: a branching template plus per-edge growth weights.

    Real shape classes (fish silhouettes, articulated objects) share two
    things across observations: the skeleton's *branching topology* and the
    *relative proportions* of its parts (a long tail stays long relative to
    the fins whatever the sampling resolution). ``graph`` fixes the former;
    ``edge_weights`` — the fraction of an instance's extra vertices that
    lands on each template edge — fixes the latter.
    """

    graph: Graph
    edge_weights: np.ndarray

    def __post_init__(self) -> None:
        weights = np.asarray(self.edge_weights, dtype=float)
        if weights.shape != (self.graph.n_edges,):
            raise DatasetError(
                "edge_weights must have one entry per template edge "
                f"(got {weights.shape}, template has {self.graph.n_edges} edges)"
            )
        if weights.min() < 0 or not np.isclose(weights.sum(), 1.0):
            raise DatasetError("edge_weights must be a probability vector")


def make_weighted_template(
    rng: np.random.Generator,
    *,
    n_vertices: int,
    concentration: float = 1.2,
) -> WeightedTemplate:
    """Draw a class template: random tree + Dirichlet edge-weight profile.

    Random trees of 10-20 vertices differ visibly in branching, and a
    Dirichlet profile with moderate ``concentration`` is spiky enough that
    each class gets characteristic limb proportions (some edges absorb most
    of the growth, i.e. become long limbs).
    """
    tree = gen.random_tree(max(int(n_vertices), 2), seed=rng)
    weights = rng.dirichlet(np.full(tree.n_edges, float(concentration)))
    return WeightedTemplate(tree, weights)


def grow_weighted(
    template: WeightedTemplate, target_n: int, rng: np.random.Generator
) -> Graph:
    """Grow a template to ``target_n`` vertices with class-fixed proportions.

    The extra ``target_n - n0`` vertices are allocated to template edges by
    a single multinomial draw over the class's edge weights and each edge is
    subdivided into that many segments. Relative segment lengths therefore
    concentrate around the class profile (multinomial noise only), while the
    total size varies freely per instance — same shape, different sampling
    resolution.
    """
    base = template.graph
    extra = max(int(target_n) - base.n_vertices, 0)
    counts = rng.multinomial(extra, template.edge_weights) if extra else \
        np.zeros(base.n_edges, dtype=int)
    n = base.n_vertices
    final_edges: list = []
    for (u, v, _), segment_extra in zip(base.edges(), counts):
        previous = u
        for _ in range(int(segment_extra)):
            final_edges.append((previous, n))
            previous = n
            n += 1
        final_edges.append((previous, v))
    adjacency = np.zeros((n, n))
    for u, v in final_edges:
        adjacency[u, v] = adjacency[v, u] = 1.0
    return Graph(adjacency)


def triangulate_chords(
    graph: Graph, rng: np.random.Generator, n_chords: int
) -> Graph:
    """Densify a skeleton with *structured* chords (shape triangulation).

    Shape graphs are dense because contours/skeletons are triangulated, not
    because edges land uniformly at random — random chords would erase the
    class signal the skeleton carries. Chords here connect vertices at
    graph distance 2 first (forming triangles along limbs, a thickened
    strip) and fall back to distance-3 pairs when the distance-2 pairs run
    out.

    Chord selection is *deterministic given the skeleton* (an even stride
    over the lexicographically sorted candidate pairs), not random: two
    instances of the same class have near-identical skeletons up to
    sampling resolution, and deterministic triangulation keeps their
    densified graphs near-identical too, exactly like triangulating two
    scans of the same shape. Random chords were measured to halve the
    within-class similarity gap. ``rng`` is accepted for signature
    symmetry with the other perturbation helpers but unused.
    """
    del rng
    adjacency = np.array(graph.adjacency)
    n_chords = int(n_chords)
    if n_chords <= 0:
        return graph
    remaining = n_chords
    for power_distance in (2, 3):
        binary = (adjacency > 0).astype(float)
        reach = np.linalg.matrix_power(binary, power_distance)
        candidates = np.argwhere(np.triu((reach > 0) & (binary == 0), k=1))
        if candidates.size == 0:
            continue
        take = min(remaining, len(candidates))
        # Even stride over sorted pairs: deterministic, spatially spread.
        positions = np.unique(
            (np.arange(take) * len(candidates)) // take
        )
        for index in positions:
            a, b = candidates[int(index)]
            adjacency[a, b] = adjacency[b, a] = 1.0
        remaining -= len(positions)
        if remaining <= 0:
            break
    return Graph(adjacency)


def limb_forest(
    rng: np.random.Generator,
    *,
    n_vertices: int,
    limb_weights: np.ndarray,
    edge_vertex_ratio: float = 0.567,
) -> Graph:
    """Forest-of-paths shape graphs (the BSPHERE31 regime).

    BSPHERE31's Table II statistics (mean edges 56.6 « mean vertices 99.8,
    ratio ~0.567) mean its graphs are *forests* with many components. We
    model a class as a set of limb paths whose relative lengths follow the
    class's ``limb_weights`` profile, plus isolated filler vertices. A limb
    of ``s`` vertices contributes ``s - 1`` edges and a singleton none, so
    the limb mass is solved from ``edge_vertex_ratio``:
    ``limb_vertices = ratio * n + n_limbs``. Singleton filler (instead of,
    say, 2-vertex paths) maximises the vertex mass the class-discriminative
    limb profile keeps at the paper's edge density.
    """
    limb_weights = np.asarray(limb_weights, dtype=float)
    if limb_weights.ndim != 1 or limb_weights.size == 0:
        raise DatasetError("limb_weights must be a non-empty 1-D profile")
    if limb_weights.min() < 0 or not np.isclose(limb_weights.sum(), 1.0):
        raise DatasetError("limb_weights must be a probability vector")
    if not 0.0 < edge_vertex_ratio < 1.0:
        raise DatasetError(
            f"edge_vertex_ratio must be in (0, 1), got {edge_vertex_ratio}"
        )
    n_limbs = limb_weights.size
    n = max(int(n_vertices), 2 * n_limbs + 1)
    limb_vertices = int(round(edge_vertex_ratio * n)) + n_limbs
    limb_vertices = int(np.clip(limb_vertices, 2 * n_limbs, n))
    # Every limb gets >= 2 vertices; the rest follow the class profile.
    extra = rng.multinomial(limb_vertices - 2 * n_limbs, limb_weights)
    limb_sizes = (extra + 2).tolist()
    pieces = [gen.path_graph(size) for size in limb_sizes]
    n_singletons = n - sum(limb_sizes)
    pieces.extend(gen.empty_graph(1) for _ in range(n_singletons))
    return disjoint_union(pieces)


def perturbed_template(
    template: Graph,
    rng: np.random.Generator,
    *,
    rewire_fraction: float,
) -> Graph:
    """Instance = class template with a fraction of edges rewired.

    The shape datasets (GatorBait/BAR31/...) have one underlying object per
    class observed under viewpoint/sampling noise; a seeded template plus
    edge rewiring reproduces that regime.
    """
    adjacency = np.array(template.adjacency)
    edges = [(u, v) for u, v, _ in template.edges()]
    n = template.n_vertices
    n_rewire = int(len(edges) * rewire_fraction)
    if n_rewire and n > 2:
        chosen = rng.choice(len(edges), size=min(n_rewire, len(edges)), replace=False)
        for edge_index in chosen:
            u, v = edges[int(edge_index)]
            adjacency[u, v] = adjacency[v, u] = 0.0
            for _ in range(10):  # retry until a fresh non-edge is found
                a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
                if a != b and adjacency[a, b] == 0.0:
                    adjacency[a, b] = adjacency[b, a] = 1.0
                    break
    return Graph(adjacency)


def shape_skeleton(
    rng: np.random.Generator,
    *,
    n_vertices: int,
    n_limbs: int,
    limb_ratio: float,
    loop_fraction: float,
) -> Graph:
    """Skeleton graphs for the CV shape classes.

    A central path ("spine") with ``n_limbs`` branch paths whose total
    length is ``limb_ratio`` of the graph, plus a few chordal loops —
    mirroring Reeb-graph style shape skeletons.
    """
    n = max(int(n_vertices), 4)
    limb_budget = int(n * limb_ratio)
    spine_length = max(n - limb_budget, 2)
    adjacency = np.zeros((n, n))
    for i in range(spine_length - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    cursor = spine_length
    for _ in range(max(n_limbs, 0)):
        if cursor >= n:
            break
        limb_length = max(1, (n - cursor) // max(n_limbs, 1))
        attach = int(rng.integers(0, spine_length))
        previous = attach
        for _ in range(limb_length):
            if cursor >= n:
                break
            adjacency[previous, cursor] = adjacency[cursor, previous] = 1.0
            previous = cursor
            cursor += 1
    while cursor < n:  # leftover vertices become spine appendages
        attach = int(rng.integers(0, cursor))
        adjacency[attach, cursor] = adjacency[cursor, attach] = 1.0
        cursor += 1
    n_loops = int(n * loop_fraction)
    for _ in range(n_loops):
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        if a != b:
            adjacency[a, b] = adjacency[b, a] = 1.0
    return Graph(adjacency)
