"""Datasets: the Table II benchmark collection (synthetic surrogates + TU IO)."""

from repro.datasets.base import DatasetStatistics, GraphDataset
from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_STATISTICS,
    load_dataset,
)
from repro.datasets.synthetic import ClassRecipe, build_dataset
from repro.datasets.tu import load_tu_directory

__all__ = [
    "ClassRecipe",
    "DATASET_NAMES",
    "DatasetStatistics",
    "GraphDataset",
    "PAPER_STATISTICS",
    "build_dataset",
    "load_dataset",
    "load_tu_directory",
]
