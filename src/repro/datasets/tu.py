"""Bridge from TU-format files on disk to :class:`GraphDataset`.

The Table II benchmarks normally come from the TU graph-kernel repository
(paper ref. [49]); this environment has no network access, so
`repro.datasets.registry` ships seeded surrogates instead. When the real
files *are* available, this module drops them into the exact same pipeline:

    dataset = load_tu_directory("/data/TUDatasets", "MUTAG", domain="Bio")
    gram = HAQJSKKernelD(...).gram(dataset.graphs, normalize=True)

so every experiment (Table IV cells, benches, examples) can run on real
data by swapping one loader call. The low-level readers/writers live in
:mod:`repro.graphs.io`; this module adds dataset-level conveniences:
target re-indexing (TU class labels can be {-1, 1} or {1..k}; the ML
substrate expects any hashables but reports are nicer with 0-based ints)
and empty-graph screening (a handful of TU datasets contain edge-less
graphs that no walk-based kernel can process).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import GraphDataset
from repro.errors import DatasetError
from repro.graphs.io import read_tu_dataset


def load_tu_directory(
    directory: str,
    name: str,
    *,
    domain: str = "",
    description: str = "",
    reindex_targets: bool = True,
    drop_edgeless: bool = True,
) -> GraphDataset:
    """Load a TU-format dataset from disk as a :class:`GraphDataset`.

    Parameters
    ----------
    directory:
        Folder containing ``name/`` (or the dataset folder itself).
    name:
        TU dataset name — the file prefix (``MUTAG`` for ``MUTAG_A.txt``).
    domain, description:
        Forwarded to the dataset (Table II metadata).
    reindex_targets:
        Map the class labels found on disk to ``0..k-1`` in sorted order
        (TU datasets variously use {-1, 1}, {1, 2}, or {1..k}).
    drop_edgeless:
        Skip graphs with no edges — the CTQW needs at least one edge, and
        a few TU datasets contain degenerate entries. Dropped graphs are
        reported in the dataset description rather than silently ignored.
    """
    graphs, targets = read_tu_dataset(directory, name)
    if not graphs:
        raise DatasetError(f"{name}: TU dataset on disk is empty")

    kept_graphs, kept_targets, dropped = [], [], 0
    for graph, target in zip(graphs, targets):
        if drop_edgeless and graph.n_edges == 0:
            dropped += 1
            continue
        kept_graphs.append(graph)
        kept_targets.append(target)
    if not kept_graphs:
        raise DatasetError(f"{name}: every graph on disk is edge-less")

    if reindex_targets:
        classes = sorted(set(kept_targets))
        index = {label: position for position, label in enumerate(classes)}
        kept_targets = [index[label] for label in kept_targets]

    note = description
    if dropped:
        suffix = f"dropped {dropped} edge-less graph(s)"
        note = f"{description} ({suffix})" if description else suffix
    return GraphDataset(
        name, kept_graphs, np.asarray(kept_targets), domain=domain,
        description=note,
    )
