"""Tiled-Gram benchmarks — out-of-core assembly, flat peak memory, and
kill → tile-granular resume.

Three demonstrations of the execution-plan layer (run under
``--benchmark-disable`` in CI they double as correctness smokes):

* **flat peak memory** — assembling the Gram through a
  :class:`~repro.engine.tiles.MemmapSink` keeps Python-side peak
  allocations at one tile while the dense path's peak grows with ``N²``
  (measured with ``tracemalloc``, which tracks NumPy's allocator but not
  file-backed maps — exactly the distinction that matters);
* **rlimit proof** — a subprocess whose address-space/data rlimit is too
  small to hold the dense ``(N, N)`` float64 Gram *fails* to allocate it
  and *succeeds* in assembling the identical matrix through the memmap
  sink, verified against a dense Gram over a stratified subsample to
  1e-12 (collection independence makes the submatrix comparison exact);
* **kill → resume** — a run killed after K committed tiles resumes by
  computing exactly ``total − K`` tiles (pinned with a counting kernel)
  and produces a byte-identical Gram.

The synthetic :class:`_DotKernel` keeps pair values trivially cheap so
the benches exercise *scheduling and storage* at thousands of graphs
without paying QJSD eigendecompositions; the resume demonstration uses
the real QJSK on a :meth:`~repro.datasets.base.GraphDataset.subsample`
of MUTAG.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tracemalloc

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.engine import BatchedEngine, DenseSink, MemmapSink, TilePlan
from repro.graphs import generators as gen
from repro.kernels import PairwiseKernel, QJSKUnaligned
from repro.store import ArtifactStore, CheckpointSink, tile_keyer_for

ATOL = 1e-12

#: Collection size for the rlimit subprocess: the dense float64 Gram is
#: ``N² × 8`` bytes — far above ``_RLIMIT_BYTES`` — while the per-tile
#: working set stays in the low megabytes.
_RLIMIT_N = 6500

#: Data-segment cap for the subprocess (bytes). Roomy enough for the
#: Python + NumPy runtime, far too small for the ~340 MB dense Gram.
_RLIMIT_BYTES = 256 * 1024 * 1024


class _DotKernel(PairwiseKernel):
    """Cheapest possible pairwise kernel: scalar states, vectorized tiles.

    ``K(a, b) = exp(-|s_a - s_b| / 8)`` over a per-graph size statistic —
    collection-independent by construction, so subsampled dense Grams are
    exact submatrices of the full one (what the rlimit proof compares).
    """

    name = "bench-dot"
    collection_independent = True

    def prepare(self, graphs) -> list:
        return [float(g.n_vertices + g.n_edges) for g in graphs]

    def pair_value(self, state_a, state_b) -> float:
        return float(np.exp(-abs(state_a - state_b) / 8.0))

    def block_values(self, states_a, states_b) -> np.ndarray:
        a = np.asarray(states_a, dtype=float)
        b = np.asarray(states_b, dtype=float)
        return np.exp(-np.abs(a[:, None] - b[None, :]) / 8.0)


def _probe_graphs(n: int) -> list:
    """``n`` small deterministic graphs with varied size statistics."""
    return [gen.cycle_graph(4 + (i * 7919) % 9) for i in range(n)]


# --------------------------------------------------------------------- #
# Dense vs memmap equivalence
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("normalize", [False, True], ids=["raw", "normalized"])
def test_memmap_matches_dense_to_1e12(tmp_path, normalize):
    kernel = _DotKernel()
    graphs = _probe_graphs(500)
    engine = BatchedEngine(tile_size=64)
    dense = kernel.gram(graphs, engine=engine, normalize=normalize)
    mapped = kernel.gram(
        graphs,
        engine=engine,
        normalize=normalize,
        sink=MemmapSink(str(tmp_path / "gram.npy")),
    )
    assert isinstance(mapped, np.memmap)
    assert np.allclose(np.asarray(mapped), dense, atol=ATOL, rtol=0.0)


def test_float32_storage_halves_footprint(tmp_path):
    kernel = _DotKernel()
    graphs = _probe_graphs(400)
    engine = BatchedEngine(tile_size=64)
    dense = kernel.gram(graphs, engine=engine)
    path64 = str(tmp_path / "g64.npy")
    path32 = str(tmp_path / "g32.npy")
    kernel.gram(graphs, engine=engine, sink=MemmapSink(path64))
    g32 = kernel.gram(
        graphs, engine=engine, sink=MemmapSink(path32, dtype="float32")
    )
    assert os.path.getsize(path32) < os.path.getsize(path64) * 0.55
    assert np.allclose(np.asarray(g32), dense, atol=1e-6, rtol=1e-6)


# --------------------------------------------------------------------- #
# Flat peak memory
# --------------------------------------------------------------------- #


def _traced_peak(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_peak_allocations_stay_flat_as_n_grows(tmp_path):
    """The out-of-core claim, measured: doubling N quadruples the dense
    path's peak Python allocations but leaves the memmap path's peak at
    the tile scale (tracemalloc sees NumPy buffers, not file maps)."""
    kernel = _DotKernel()
    engine = BatchedEngine(tile_size=64)
    peaks = {}
    for label, n in (("small", 600), ("large", 1200)):
        graphs = _probe_graphs(n)
        states = kernel.prepare(graphs)  # outside the trace: linear, cheap
        sink = MemmapSink(str(tmp_path / f"{label}.npy"))
        peaks[("memmap", label)] = _traced_peak(
            lambda: engine.gram(kernel, states, sink=sink)
        )
        peaks[("dense", label)] = _traced_peak(
            lambda: engine.gram(kernel, states, sink=DenseSink())
        )
    dense_bytes = 1200 * 1200 * 8
    assert peaks[("dense", "large")] >= dense_bytes
    # Flatness: the memmap peak neither approaches the dense matrix size
    # nor scales with it (4x matrix growth, < 2x peak growth).
    assert peaks[("memmap", "large")] < dense_bytes / 8
    assert peaks[("memmap", "large")] < 2 * max(peaks[("memmap", "small")], 1)


# --------------------------------------------------------------------- #
# rlimit proof (runs as a subprocess; see __main__ block)
# --------------------------------------------------------------------- #


def test_rlimit_capped_memmap_gram(tmp_path):
    """Under a data-segment rlimit the dense Gram cannot even be
    allocated; the memmap plan completes and matches a dense Gram over a
    stratified subsample to 1e-12."""
    if not sys.platform.startswith("linux"):  # pragma: no cover
        pytest.skip("RLIMIT_DATA semantics are only pinned down on Linux")
    out_path = str(tmp_path / "capped-gram.npy")
    result = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--rlimit-child", out_path],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        timeout=600,
    )
    assert result.returncode == 0, result.stderr + result.stdout
    assert "dense allocation refused under rlimit" in result.stdout

    # Parent process (no rlimit): subsampled dense comparison. The kernel
    # is collection-independent, so the dense Gram over the subsample is
    # exactly the corresponding submatrix of the big memmapped one.
    mapped = np.load(out_path, mmap_mode="r")
    assert mapped.shape == (_RLIMIT_N, _RLIMIT_N)
    rng = np.random.default_rng(0)
    idx = np.sort(rng.choice(_RLIMIT_N, size=200, replace=False))
    graphs = _probe_graphs(_RLIMIT_N)
    sub_dense = _DotKernel().gram([graphs[i] for i in idx])
    assert np.allclose(
        np.asarray(mapped[np.ix_(idx, idx)]), sub_dense, atol=ATOL, rtol=0.0
    )


def _rlimit_child(out_path: str) -> int:  # pragma: no cover - subprocess
    """Child body: cap the data segment, prove the cap binds, assemble."""
    import resource

    resource.setrlimit(resource.RLIMIT_DATA, (_RLIMIT_BYTES, _RLIMIT_BYTES))
    try:
        dense = np.zeros((_RLIMIT_N, _RLIMIT_N))
        dense[0, 0] = 1.0  # force the pages if the allocation was lazy
        print("dense allocation unexpectedly succeeded")
        return 1
    except MemoryError:
        print("dense allocation refused under rlimit")
    kernel = _DotKernel()
    graphs = _probe_graphs(_RLIMIT_N)
    gram = kernel.gram(
        graphs,
        engine=BatchedEngine(tile_size=512),
        sink=MemmapSink(out_path),
    )
    print(f"memmap gram assembled: shape={gram.shape}")
    return 0


# --------------------------------------------------------------------- #
# Kill -> tile-granular resume
# --------------------------------------------------------------------- #


class _CountingQJSK(QJSKUnaligned):
    """Counts tile-block evaluations; the counter is underscore-prefixed
    so it never perturbs the kernel fingerprint (and hence tile keys)."""

    def __init__(self):
        super().__init__()
        self._block_calls = 0

    @property
    def block_calls(self):
        return self._block_calls

    def block_values(self, states_a, states_b):
        self._block_calls += 1
        return super().block_values(states_a, states_b)

    def symmetric_block_values(self, states):
        self._block_calls += 1
        return super().symmetric_block_values(states)


class _DyingSink(CheckpointSink):
    def __init__(self, *args, survive, **kwargs):
        super().__init__(*args, **kwargs)
        self.survive = survive

    def write(self, rows, cols, block):
        if self.tiles_computed >= self.survive:
            raise KeyboardInterrupt("simulated kill")
        super().write(rows, cols, block)


def test_kill_then_resume_recomputes_only_unfinished_tiles(tmp_path):
    """The acceptance pin, at bench scale on real MUTAG graphs through
    QJSK: kill after K tiles, resume computes exactly total-K, and the
    resumed Gram is byte-identical to an uninterrupted one."""
    dataset = load_dataset("MUTAG", scale=0.5, seed=0).subsample(40, seed=0)
    graphs = dataset.graphs
    tile = 8
    engine = BatchedEngine(tile_size=tile)
    total_tiles = TilePlan.gram(len(graphs), tile).n_tiles()
    survive = total_tiles // 3
    store = ArtifactStore(str(tmp_path / "store"))

    kernel = _CountingQJSK()
    dying = _DyingSink(
        store, tile_keyer_for(kernel, graphs), survive=survive
    )
    with pytest.raises(KeyboardInterrupt):
        kernel.gram(graphs, engine=engine, sink=dying)
    assert dying.tiles_computed == survive

    kernel = _CountingQJSK()
    sink = CheckpointSink(store, tile_keyer_for(kernel, graphs))
    resumed = kernel.gram(graphs, engine=engine, sink=sink)
    assert sink.tiles_restored == survive
    assert sink.tiles_computed == total_tiles - survive
    assert kernel.block_calls == total_tiles - survive

    clean = QJSKUnaligned().gram(graphs, engine=engine)
    assert np.array_equal(np.asarray(resumed), clean)


# --------------------------------------------------------------------- #
# Timed benches
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("sink_name", ["dense", "memmap"])
def test_bench_tiled_gram_assembly(sink_name, tmp_path, benchmark):
    """Wall-clock cost of the sink abstraction itself: memmap assembly
    should track the dense path (I/O-buffered sequential tile writes)."""
    kernel = _DotKernel()
    graphs = _probe_graphs(1500)
    states = kernel.prepare(graphs)
    engine = BatchedEngine(tile_size=64)

    def run():
        sink = (
            DenseSink()
            if sink_name == "dense"
            else MemmapSink(str(tmp_path / "bench.npy"))
        )
        return engine.gram(kernel, states, sink=sink)

    gram = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert gram.shape == (1500, 1500)
    benchmark.extra_info["n_graphs"] = 1500


def test_bench_checkpoint_overhead(tmp_path, benchmark):
    """Tile-commit overhead on a warm store: every tile restored, zero
    kernel work — the warm-restart floor of the checkpoint layer."""
    kernel = _DotKernel()
    graphs = _probe_graphs(800)
    store = ArtifactStore(str(tmp_path / "store"))
    engine = BatchedEngine(tile_size=64)
    first = CheckpointSink(store, tile_keyer_for(kernel, graphs))
    kernel.gram(graphs, engine=engine, sink=first)

    def warm():
        sink = CheckpointSink(store, tile_keyer_for(kernel, graphs))
        gram = kernel.gram(graphs, engine=engine, sink=sink)
        assert sink.tiles_computed == 0
        return gram

    gram = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert np.asarray(gram).shape == (800, 800)


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    if len(sys.argv) >= 3 and sys.argv[1] == "--rlimit-child":
        sys.exit(_rlimit_child(sys.argv[2]))
    sys.exit(
        "usage: bench_tiled_gram.py --rlimit-child <out.npy> "
        "(or run under pytest)"
    )
