"""Serving-throughput benchmarks — graphs/second versus batch size.

The serving cost model (see :mod:`repro.serve.service`): a batch of ΔN
newcomers against a bundle of N training graphs costs the ``(ΔN, N)``
cross-block pair evaluations through whichever engine backend the service
is configured with, plus O(ΔN) preparation. These benches measure the end
-to-end ``PredictionService.predict`` wall-clock for a frozen HAQJSK(D)
bundle across the three backends and a sweep of batch sizes, recording
``graphs_per_second`` in ``extra_info`` so the serving headroom is
tracked over time like the engine speedups are.

Every bench also asserts the served labels equal the transductive
full-Gram protocol's labels, so the CI smoke run (``--benchmark-disable``)
doubles as an end-to-end correctness check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.kernels import HAQJSKKernelD
from repro.ml import KernelSVC, condition_gram
from repro.serve import PredictionService, train_bundle

#: Engine backends the serving rectangle can run on.
BACKENDS = ("serial", "batched", "process")

#: Newcomer batch sizes (ΔN) for the throughput sweep.
BATCH_SIZES = (1, 4, 16)

#: Fixed box constraint: throughput benches should not re-run C selection.
C = 10.0


@pytest.fixture(scope="module")
def training_set():
    return load_dataset("MUTAG", scale=0.25, seed=0)


@pytest.fixture(scope="module")
def bundle(training_set):
    kernel = HAQJSKKernelD(n_prototypes=16, n_levels=2, max_layers=4, seed=0)
    kernel.freeze(training_set.graphs)
    return train_bundle(kernel, training_set.graphs, training_set.targets, c=C)


@pytest.fixture(scope="module")
def newcomers():
    # A different seed yields genuinely unseen arrivals (both classes).
    return load_dataset("MUTAG", scale=0.15, seed=7).graphs


@pytest.fixture(scope="module")
def expected_labels(bundle, training_set, newcomers):
    """Transductive full-Gram protocol labels for every newcomer batch."""
    kernel = bundle.kernel
    everything = list(training_set.graphs) + list(newcomers)
    conditioned = condition_gram(kernel.gram(everything))
    n = len(training_set.graphs)
    train_idx = np.arange(n)
    model = KernelSVC(c=C).fit(
        conditioned[np.ix_(train_idx, train_idx)], training_set.targets
    )
    return model.predict(conditioned[np.ix_(np.arange(n, len(everything)), train_idx)])


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_serve_throughput(
    backend, batch_size, bundle, newcomers, expected_labels, benchmark
):
    service = PredictionService(bundle, engine=backend)
    batch = newcomers[:batch_size]
    # Warm the service's prepared-training-state cache outside the timer:
    # a serving loop pays it once, not per batch.
    warm = service.predict(batch)
    result = benchmark.pedantic(
        service.predict, args=(batch,), rounds=3, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info.update(
        {
            "backend": backend,
            "batch_size": batch_size,
            "n_training_graphs": bundle.n_training_graphs,
        }
    )
    # Stats are absent under --benchmark-disable (the CI smoke run).
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:
        benchmark.extra_info["graphs_per_second"] = round(
            batch_size / max(stats.mean, 1e-12), 2
        )
    assert np.array_equal(result.labels, warm.labels)
    assert np.array_equal(result.labels, expected_labels[:batch_size])


def test_bench_batched_serving_beats_serial(bundle, newcomers, benchmark):
    """The engine win carries through the serving wrapper: one batched
    full-batch predict, with the serial wall-clock recorded alongside."""
    import time

    batch = list(newcomers)
    serial_service = PredictionService(bundle, engine="serial")
    serial_service.predict(batch[:1])  # warm states
    started = time.perf_counter()
    serial_result = serial_service.predict(batch)
    serial_seconds = time.perf_counter() - started

    batched_service = PredictionService(bundle, engine="batched")
    batched_service.predict(batch[:1])
    result = benchmark.pedantic(
        batched_service.predict, args=(batch,), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    benchmark.extra_info["batch_size"] = len(batch)
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:
        benchmark.extra_info["speedup_vs_serial"] = round(
            serial_seconds / max(stats.mean, 1e-12), 2
        )
    assert np.array_equal(result.labels, serial_result.labels)
