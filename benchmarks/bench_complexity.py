"""Section III-D benchmark — empirical scaling of the HAQJSK computation.

The paper claims O(N^2 n^3) overall. This bench measures the two Gram
stages separately over sweeps of the graph count N and the graph order n
and fits per-stage log-log slopes. Expectations (see
experiments.complexity docstring): the *pairwise QJSD* stage scales near 2
in N — the paper's quadratic term — while preparation is linear in N; the
n-slope stays well below the worst-case 3 because the aligned structures
have fixed prototype size.
"""

from __future__ import annotations

from repro.experiments.complexity import run_complexity


def test_bench_complexity_scaling(once, benchmark):
    result = once(
        run_complexity,
        vertex_sweep=(16, 24, 36, 54, 80),
        graph_sweep=(8, 16, 32, 64, 128),
        seed=0,
    )
    benchmark.extra_info.update(
        {
            "graph_prepare_slope": round(result["graph_prepare_slope"], 3),
            "graph_pairwise_slope": round(result["graph_pairwise_slope"], 3),
            "vertex_slope": round(result["vertex_slope"], 3),
        }
    )
    # The paper's O(N^2) term: the pairwise stage must scale near 2.
    assert 1.3 < result["graph_pairwise_slope"] < 3.0
    # Preparation is linear-ish in N; n-slope below cubic.
    assert 0.5 < result["graph_prepare_slope"] < 2.0
    assert result["vertex_slope"] < 3.2
    # Timings must grow monotonically over the sweeps (sanity).
    graph_times = [row["total s"] for row in result["graph_rows"]]
    assert graph_times[-1] > graph_times[0]
