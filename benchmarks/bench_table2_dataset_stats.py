"""Table II benchmark — regenerate the dataset-statistics table.

Builds every registry dataset and checks its measured statistics against
the paper's Table II row. Graph counts match exactly at scale 1.0; the
vertex/edge means must land within the generators' calibration tolerance.

By default the four largest datasets are generated at reduced scale to
keep the bench snappy; ``REPRO_FULL_SCALE=1`` builds all twelve at paper
size (the statistics assertions are scale-aware).
"""

from __future__ import annotations

import pytest

from repro.datasets import DATASET_NAMES, PAPER_STATISTICS, load_dataset
from repro.experiments.config import full_scale

#: Relative tolerance for mean vertices/edges vs the paper's Table II.
MEAN_TOLERANCE = 0.35

#: Scaled-mode generation settings (graph-count scale only; sizes stay at
#: paper scale so the vertex/edge means remain comparable).
BENCH_SCALE = {
    "MUTAG": 1.0, "PPIs": 1.0, "CATH2": 0.5, "PTC": 1.0,
    "GatorBait": 1.0, "BAR31": 1.0, "BSPHERE31": 1.0, "GEOD31": 1.0,
    "IMDB-B": 0.3, "IMDB-M": 0.2, "RED-B": 0.1, "COLLAB": 0.06,
}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_bench_table2_dataset(name, benchmark):
    scale = 1.0 if full_scale() else BENCH_SCALE[name]

    def build():
        return load_dataset(name, scale=scale, seed=0).statistics()

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    paper = PAPER_STATISTICS[name]
    benchmark.extra_info.update(
        {
            "mean_vertices": round(stats.mean_vertices, 2),
            "paper_mean_vertices": paper.mean_vertices,
            "mean_edges": round(stats.mean_edges, 2),
            "paper_mean_edges": paper.mean_edges,
            "n_graphs": stats.n_graphs,
        }
    )

    assert stats.n_classes == paper.n_classes
    assert stats.domain == paper.domain
    if scale == 1.0:
        assert stats.n_graphs == paper.n_graphs
    vertex_ratio = stats.mean_vertices / paper.mean_vertices
    assert 1 - MEAN_TOLERANCE < vertex_ratio < 1 + MEAN_TOLERANCE, (
        f"{name}: mean vertices {stats.mean_vertices:.1f} vs paper "
        f"{paper.mean_vertices}"
    )
    edge_ratio = stats.mean_edges / paper.mean_edges
    assert 1 - MEAN_TOLERANCE < edge_ratio < 1 + MEAN_TOLERANCE, (
        f"{name}: mean edges {stats.mean_edges:.1f} vs paper {paper.mean_edges}"
    )
    if name in ("MUTAG", "PTC"):
        assert stats.n_vertex_labels is not None
        assert stats.n_vertex_labels <= paper.n_vertex_labels
