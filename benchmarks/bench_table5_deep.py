"""Table V benchmark — HAQJSK vs the deep-learning baselines.

One bench per Table V dataset: trains DGCNN/PSGCNN/DCNN per fold on the
numpy autograd, evaluates the DGK/AWE embedding kernels, and compares
everything against the HAQJSK kernels under the same CV protocol. The
asserted shape follows the paper: the best HAQJSK kernel is competitive
with (within a few points of) or better than every deep baseline, and
DCNN — the weakest model in the paper's Table V — does not dominate.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import TABLE5_DATASETS, full_scale
from repro.experiments.table5 import evaluate_cell

SCALED_EPOCHS = 15
MODELS = ("HAQJSK(A)", "HAQJSK(D)", "DGCNN", "PSGCNN", "DCNN", "DGK", "AWE")


@pytest.mark.parametrize("dataset", TABLE5_DATASETS)
def test_bench_table5_dataset(dataset, benchmark):
    n_epochs = 40 if full_scale() else SCALED_EPOCHS

    def evaluate():
        return {
            model: evaluate_cell(
                model, dataset, seed=0, n_repeats=1, n_epochs=n_epochs
            )
            for model in MODELS
        }

    cells = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    accuracies = {m: round(c["accuracy"], 2) for m, c in cells.items()}
    benchmark.extra_info.update(accuracies)

    best_haqjsk = max(accuracies["HAQJSK(A)"], accuracies["HAQJSK(D)"])
    best_deep = max(
        accuracies[m] for m in ("DGCNN", "PSGCNN", "DCNN", "DGK", "AWE")
    )
    # Paper shape: the HAQJSK kernels win or stay competitive on every
    # Table V dataset (scaled data is noisier, hence the slack).
    assert best_haqjsk >= best_deep - 12.0, (
        f"{dataset}: HAQJSK {best_haqjsk} vs best deep {best_deep}"
    )
