"""Distributed tile-worker benchmarks — throughput vs worker count and
recovery cost after killing workers mid-run.

Two questions the lease/heartbeat design (DESIGN.md, "Distributed tiles")
leaves quantitative:

* how does tile throughput scale as K subprocess workers share one
  ``dir:`` store (the claim protocol's contention overhead is the price
  of coordination-free workers);
* what does losing half the fleet mid-run cost — survivors must wait out
  the lease TTL before stealing a dead worker's tiles, so recovery adds
  at most ``TTL + stolen-tiles/remaining-throughput``.

Every bench emits a machine-readable JSON record in
``extra_info["distributed_row"]`` (worker count, tiles, wall-clock,
tiles/s, and for the recovery bench the kill accounting), and asserts
byte-identity against the single-process reference — a throughput win
that changed the matrix would be measuring the wrong thing.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.api import ExecutionContext, Session
from repro.datasets import load_dataset
from repro.distributed import DistributedJob
from repro.distributed.coordinator import spawn_worker

#: Fleet sizes of the throughput sweep.
WORKER_COUNTS = (1, 2, 4)

#: The benched schedule: small tiles make enough claim events to measure.
BENCH_CTX = ExecutionContext(engine="batched", tile_size=8)

#: Lease TTL for the benches (short, so the recovery bench's steal wait
#: is visible but not dominant).
BENCH_TTL = 2.0


@pytest.fixture(scope="module")
def probe_graphs():
    return load_dataset("MUTAG", scale=0.25, seed=0).graphs


@pytest.fixture(scope="module")
def reference_gram(probe_graphs):
    return np.asarray(
        Session(ctx=BENCH_CTX).gram("HAQJSK(A)", probe_graphs, normalize=True)
    )


def _drive_job(job, n_workers, *, kill_after=None, tile_delay=0.05):
    """Run ``n_workers`` subprocesses to completion; optionally SIGKILL
    the first ``kill_after[0]`` of them at ``kill_after[1]`` seconds.
    Returns the wall-clock seconds to ledger completion."""
    started = time.perf_counter()
    procs = [
        spawn_worker(
            job.store.address, job.job_id, worker_id=f"bench-{index}",
            ttl=BENCH_TTL, tile_delay=tile_delay,
        )
        for index in range(n_workers)
    ]
    try:
        if kill_after is not None:
            n_kill, after = kill_after
            time.sleep(after)
            for proc in procs[:n_kill]:
                proc.kill()
        job.wait(timeout=600)
        elapsed = time.perf_counter() - started
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=30)
            except Exception:  # pragma: no cover - stuck child
                proc.kill()
    return elapsed


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_bench_tile_throughput_vs_workers(
    workers, probe_graphs, reference_gram, benchmark, tmp_path_factory
):
    timings = {}

    def run():
        store = tmp_path_factory.mktemp(f"dist-throughput-{workers}")
        job = DistributedJob.submit(
            f"dir:{store}", "HAQJSK(A)", probe_graphs,
            ctx=BENCH_CTX, normalize=True, ttl=BENCH_TTL,
        )
        timings["seconds"] = _drive_job(job, workers)
        timings["tiles"] = job.ledger.total()
        return job.assemble(persist=False)

    gram = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gram.tobytes() == reference_gram.tobytes()
    record = {
        "bench": "throughput",
        "workers": workers,
        "tiles": timings["tiles"],
        "seconds": round(timings["seconds"], 3),
        "tiles_per_second": round(timings["tiles"] / timings["seconds"], 2),
    }
    benchmark.extra_info["distributed_row"] = json.dumps(record, sort_keys=True)


def test_bench_recovery_after_killing_half(
    probe_graphs, reference_gram, benchmark, tmp_path_factory
):
    # 4 workers, 2 SIGKILLed one second in: the survivors wait out the
    # lease TTL, steal the dead workers' tiles, and finish the job.
    timings = {}

    def run():
        store = tmp_path_factory.mktemp("dist-recovery")
        job = DistributedJob.submit(
            f"dir:{store}", "HAQJSK(A)", probe_graphs,
            ctx=BENCH_CTX, normalize=True, ttl=BENCH_TTL,
        )
        timings["seconds"] = _drive_job(
            job, 4, kill_after=(2, 1.0), tile_delay=0.1
        )
        timings["tiles"] = job.ledger.total()
        return job.assemble(persist=False)

    gram = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gram.tobytes() == reference_gram.tobytes()
    record = {
        "bench": "recovery",
        "workers": 4,
        "killed": 2,
        "kill_after_seconds": 1.0,
        "lease_ttl": BENCH_TTL,
        "tiles": timings["tiles"],
        "seconds": round(timings["seconds"], 3),
        "tiles_per_second": round(timings["tiles"] / timings["seconds"], 2),
    }
    benchmark.extra_info["distributed_row"] = json.dumps(record, sort_keys=True)
