"""Kernel-throughput benchmarks — Gram-matrix wall-clock per kernel.

Backs the Section III-D complexity discussion with concrete timings: every
Table IV kernel computes the Gram matrix of the same probe collection.
These are the only benches that use multiple rounds (the payloads are
sub-second).
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.experiments.config import TABLE4_KERNELS
from repro.experiments.kernel_zoo import make_kernel


@pytest.fixture(scope="module")
def probe_graphs():
    dataset = load_dataset("MUTAG", scale=0.15, seed=0)
    return dataset.graphs


@pytest.mark.parametrize("name", TABLE4_KERNELS)
def test_bench_gram_throughput(name, probe_graphs, benchmark):
    kernel = make_kernel(name, n_prototypes=16, seed=0)
    gram = benchmark.pedantic(
        kernel.gram, args=(probe_graphs,), kwargs={"normalize": True},
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert gram.shape == (len(probe_graphs), len(probe_graphs))


def test_bench_nystrom_speedup(benchmark):
    """Nyström (m = N/4 landmarks) vs the exact N² Gram on HAQJSK(D).

    The saving targets the quadratic pair-evaluation stage that dominates
    Section III-D's O(N²n³); extra_info records both wall-clocks and the
    relative Frobenius error of the approximation.
    """
    import time

    import numpy as np

    from repro.ml.nystrom import nystrom_gram

    dataset = load_dataset("MUTAG", scale=0.35, seed=0)
    graphs = dataset.graphs
    kernel = make_kernel("HAQJSK(D)", n_prototypes=16, seed=0)

    start = time.perf_counter()
    exact = kernel.gram(graphs)
    exact_seconds = time.perf_counter() - start

    def run():
        return nystrom_gram(
            kernel, graphs, n_landmarks=max(len(graphs) // 4, 2), seed=0
        )

    approx = benchmark.pedantic(run, rounds=2, iterations=1)
    error = float(
        np.linalg.norm(approx - exact) / np.linalg.norm(exact)
    )
    benchmark.extra_info.update(
        {
            "exact_gram_seconds": round(exact_seconds, 3),
            "relative_frobenius_error": round(error, 4),
            "n_graphs": len(graphs),
        }
    )
    assert error < 0.25
