"""Kernel-throughput benchmarks — Gram-matrix wall-clock per kernel.

Backs the Section III-D complexity discussion with concrete timings: every
Table IV kernel computes the Gram matrix of the same probe collection,
and the engine benches measure the pair-evaluation stage — the ``O(N^2)``
factor the Gram backends (:mod:`repro.engine`) control — per backend,
recording the speedup over the serial reference in ``extra_info``. These
are the only benches that use multiple rounds (the payloads are
sub-second).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.backend import (
    DEFAULT_CHEBYSHEV_DEGREE,
    ComputePolicy,
    collect_phase_timings,
    policy_scope,
)
from repro.datasets import load_dataset
from repro.engine import resolve_engine
from repro.experiments.config import TABLE4_KERNELS
from repro.experiments.kernel_zoo import make_kernel

#: Backends the engine benches compare (serial is the reference).
ENGINE_BACKENDS = ("serial", "batched", "process")

#: Pairwise kernels with a vectorized block path worth tracking over time.
ENGINE_KERNELS = ("HAQJSK(A)", "HAQJSK(D)", "QJSK", "JTQK")

#: Compute-policy rows of the backend/precision bench: the float64/eig
#: reference, the CLI-requested policy (--backend/--precision/--entropy),
#: and the forced eigenvalue-free Chebyshev path.
POLICY_ROWS = ("reference", "requested", "chebyshev")

#: Kernels the compute-policy axis measures: QJSK (large padded stacks —
#: the entropy-bound worst case), HAQJSK(D) (many small aligned levels)
#: and JTQK (matmul-bound at q = 2).
POLICY_KERNELS = ("QJSK", "HAQJSK(D)", "JTQK")

#: Documented tolerance tiers on Gram entries vs the float64 reference.
POLICY_ATOL = {"float64/eig": 1e-10, "float32/eig": 1e-5, "approx": 2e-2}


@pytest.fixture(scope="module")
def probe_graphs():
    dataset = load_dataset("MUTAG", scale=0.15, seed=0)
    return dataset.graphs


@pytest.fixture(scope="module")
def engine_probe_graphs():
    """A larger MUTAG probe: the pair stage needs N^2 to be visible."""
    dataset = load_dataset("MUTAG", scale=0.5, seed=0)
    return dataset.graphs


@pytest.fixture(scope="module")
def _engine_bench_state():
    """Shared per-kernel cache: prepared states and the serial wall-clock."""
    return {}


@pytest.mark.parametrize("name", TABLE4_KERNELS)
def test_bench_gram_throughput(name, probe_graphs, benchmark):
    kernel = make_kernel(name, n_prototypes=16, seed=0)
    gram = benchmark.pedantic(
        kernel.gram, args=(probe_graphs,), kwargs={"normalize": True},
        rounds=3, iterations=1, warmup_rounds=1,
    )
    benchmark.extra_info["gram_engine"] = str(kernel.engine)
    assert gram.shape == (len(probe_graphs), len(probe_graphs))


@pytest.mark.parametrize("backend", ENGINE_BACKENDS)
@pytest.mark.parametrize("name", ENGINE_KERNELS)
def test_bench_engine_backends(
    name, backend, engine_probe_graphs, _engine_bench_state, benchmark
):
    """Pair-evaluation stage per backend, with speedup ratios over serial.

    The collection is prepared once per kernel (preparation is
    backend-independent by construction) and each backend computes the
    full Gram from the shared states. ``extra_info`` records the
    backend's wall-clock and its speedup over the serial reference, so
    ``BENCH_*.json`` tracks the engine win over time; equivalence to the
    serial Gram is asserted at the engine test suite's 1e-10 tolerance.
    """
    if name not in _engine_bench_state:
        kernel = make_kernel(name, n_prototypes=16, seed=0)
        states = kernel.prepare(engine_probe_graphs)
        serial = resolve_engine("serial")
        started = time.perf_counter()
        reference = serial.gram(kernel, states)
        serial_seconds = time.perf_counter() - started
        _engine_bench_state[name] = (kernel, states, reference, serial_seconds)
    kernel, states, reference, serial_seconds = _engine_bench_state[name]

    engine = resolve_engine(backend)
    gram = benchmark.pedantic(
        engine.gram, args=(kernel, states), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info.update(
        {
            "backend": backend,
            "n_graphs": len(engine_probe_graphs),
            "serial_seconds": round(serial_seconds, 4),
        }
    )
    # Stats are absent under --benchmark-disable (the CI smoke run).
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:
        speedup = serial_seconds / max(stats.mean, 1e-12)
        benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
    assert np.allclose(gram, reference, atol=1e-10, rtol=0.0)


def _requested_policy(config) -> ComputePolicy:
    """The ComputePolicy the CLI options describe."""
    values = {
        "backend": config.getoption("--backend"),
        "precision": config.getoption("--precision"),
        "entropy": config.getoption("--entropy"),
    }
    degree = config.getoption("--chebyshev-degree")
    if degree is not None:
        values["chebyshev_degree"] = degree
    return ComputePolicy(**values)


def _policy_for_row(row: str, config) -> ComputePolicy:
    requested = _requested_policy(config)
    if row == "reference":
        return ComputePolicy()
    if row == "chebyshev":
        return requested.replace(entropy="chebyshev")
    return requested


def _row_atol(policy: ComputePolicy) -> float:
    """The documented Gram-entry tolerance tier a policy falls under."""
    if policy.entropy != "eig":
        return POLICY_ATOL["approx"]
    if policy.precision == "float32":
        return POLICY_ATOL["float32/eig"]
    return POLICY_ATOL["float64/eig"]


@pytest.fixture(scope="module")
def _policy_bench_state():
    """Per-kernel cache: states plus the reference Gram and wall-clock."""
    return {}


@pytest.mark.parametrize("row", POLICY_ROWS)
@pytest.mark.parametrize("name", POLICY_KERNELS)
def test_bench_compute_policies(
    name, row, engine_probe_graphs, _policy_bench_state, benchmark, request
):
    """Backend/precision axis of the Gram hot path (ISSUE satellite).

    Each row runs the same batched tile stream under one compute policy
    and emits a machine-readable JSON record (``extra_info["policy_row"]``)
    with graphs/sec, the speedup over the float64/eig reference, the
    per-phase wall-clock split (state assembly vs eig vs reduce vs
    matmul) and the measured max deviation from the reference Gram —
    which is asserted against the documented tolerance tier. The CPU
    float32 win comes from the eigenvalue-free path: LAPACK's float32
    ``syevd`` is no faster than float64, so ``--precision float32`` with
    the default ``--entropy auto`` routes large stacks through the
    Chebyshev trace recurrences (float32 GEMMs run ~3.5x faster), while
    ``--entropy eig`` measures the honest (flat) eig-bound baseline.
    """
    policy = _policy_for_row(row, request.config)
    if name not in _policy_bench_state:
        kernel = make_kernel(name, n_prototypes=16, seed=0)
        states = kernel.prepare(engine_probe_graphs)
        engine = resolve_engine("batched")
        with policy_scope(ComputePolicy()):
            engine.gram(kernel, states)  # warm caches before timing
            started = time.perf_counter()
            reference = engine.gram(kernel, states)
            reference_seconds = time.perf_counter() - started
        _policy_bench_state[name] = (
            kernel, states, reference, reference_seconds,
        )
    kernel, states, reference, reference_seconds = _policy_bench_state[name]

    engine = resolve_engine("batched")

    def run():
        with policy_scope(policy):
            return engine.gram(kernel, states)

    gram = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

    # One extra instrumented pass for the phase split (kept out of the
    # timed rounds so the timings stay comparable across rows).
    with collect_phase_timings() as phases:
        with policy_scope(policy):
            engine.gram(kernel, states)

    atol = _row_atol(policy)
    deviation = float(np.abs(gram - reference).max())
    record = {
        "kernel": name,
        "policy": policy.describe(),
        "chebyshev_degree": policy.chebyshev_degree,
        "n_graphs": len(engine_probe_graphs),
        "reference_seconds": round(reference_seconds, 4),
        "max_abs_deviation": deviation,
        "tolerance_tier": atol,
        "phase_seconds": {
            phase: round(seconds, 4) for phase, seconds in sorted(phases.items())
        },
    }
    # Stats are absent under --benchmark-disable (the CI smoke run).
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:
        mean = max(stats.mean, 1e-12)
        record["seconds"] = round(mean, 4)
        record["graphs_per_second"] = round(len(engine_probe_graphs) / mean, 2)
        record["speedup_vs_float64_eig"] = round(reference_seconds / mean, 2)
    benchmark.extra_info["policy_row"] = json.dumps(record, sort_keys=True)
    assert gram.shape == reference.shape
    assert deviation <= atol


def test_bench_nystrom_speedup(benchmark):
    """Nyström (m = N/4 landmarks) vs the exact N² Gram on HAQJSK(D).

    The saving targets the quadratic pair-evaluation stage that dominates
    Section III-D's O(N²n³); extra_info records both wall-clocks and the
    relative Frobenius error of the approximation.
    """
    import time

    import numpy as np

    from repro.ml.nystrom import nystrom_gram

    dataset = load_dataset("MUTAG", scale=0.35, seed=0)
    graphs = dataset.graphs
    kernel = make_kernel("HAQJSK(D)", n_prototypes=16, seed=0)

    start = time.perf_counter()
    exact = kernel.gram(graphs)
    exact_seconds = time.perf_counter() - start

    def run():
        return nystrom_gram(
            kernel, graphs, n_landmarks=max(len(graphs) // 4, 2), seed=0
        )

    approx = benchmark.pedantic(run, rounds=2, iterations=1)
    error = float(
        np.linalg.norm(approx - exact) / np.linalg.norm(exact)
    )
    benchmark.extra_info.update(
        {
            "exact_gram_seconds": round(exact_seconds, 3),
            "relative_frobenius_error": round(error, 4),
            "n_graphs": len(graphs),
        }
    )
    assert error < 0.25
