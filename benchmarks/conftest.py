"""Shared benchmark configuration.

Every benchmark runs its workload exactly once (``pedantic`` with one
round): the payloads are full experiment cells, not microseconds-scale
functions, and the numbers of interest (accuracies, property measurements)
are attached to ``benchmark.extra_info`` so they land in the report.

Set ``REPRO_FULL_SCALE=1`` to run the paper-scale protocol (hours).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    """Compute-policy axis for the throughput benches.

    ``--backend`` / ``--precision`` / ``--entropy`` select the
    :class:`repro.backend.ComputePolicy` the backend benches measure in
    addition to the float64/eig reference; ``--chebyshev-degree``
    overrides the approximation degree. Example::

        pytest benchmarks/bench_kernel_throughput.py \
            --backend numpy --precision float32
    """
    group = parser.getgroup("repro compute policy")
    group.addoption(
        "--backend",
        action="store",
        default="numpy",
        help="array backend to benchmark (numpy/torch/cupy)",
    )
    group.addoption(
        "--precision",
        action="store",
        default="float32",
        help="device precision to benchmark (float64/float32)",
    )
    group.addoption(
        "--entropy",
        action="store",
        default="auto",
        help="entropy path for the requested-policy row (eig/chebyshev/"
        "auto); 'auto' routes large stacks eigenvalue-free when the "
        "backend prefers it (the float32 fast path)",
    )
    group.addoption(
        "--chebyshev-degree",
        action="store",
        type=int,
        default=None,
        help="Chebyshev interpolation degree for the eig-free entropy row",
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` with the active benchmark."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
