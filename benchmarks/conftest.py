"""Shared benchmark configuration.

Every benchmark runs its workload exactly once (``pedantic`` with one
round): the payloads are full experiment cells, not microseconds-scale
functions, and the numbers of interest (accuracies, property measurements)
are attached to ``benchmark.extra_info`` so they land in the report.

Set ``REPRO_FULL_SCALE=1`` to run the paper-scale protocol (hours).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.fixture
def once(benchmark):
    """Fixture wrapping :func:`run_once` with the active benchmark."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
