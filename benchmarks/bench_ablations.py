"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper table — these justify the reproduction's documented decisions:

* Hamiltonian operator (paper: Laplacian) vs adjacency;
* aligned-density trace renormalisation (our Eq. 21 fix) on/off;
* prototype-indexing consistency across the Eq. 23/25 average over k;
* hierarchy depth H (paper: 5) — does the hierarchy actually help?
* DB entropy flavour (Shannon per ref. [26] vs von Neumann);
* level-1 prototype count M (paper: 256 at full scale);
* pre-SVM Gram conditioning (centering + trace rescale; kernel_utils);
* the attributed extension (Section V future work) vs the plain kernels
  on a labelled dataset.

Each bench reports MUTAG accuracy for both settings in ``extra_info``;
assertions only guard against catastrophic regressions, since individual
choices shift accuracy by single points.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.kernels import (
    HAQJSKAttributedD,
    HAQJSKKernelA,
    HAQJSKKernelD,
)
from repro.ml import condition_gram, cross_validate_kernel


def _accuracy(kernel, dataset, seed=0, *, condition: bool = True) -> float:
    gram = kernel.gram(dataset.graphs, normalize=True)
    if condition:
        gram = condition_gram(gram)
    result = cross_validate_kernel(
        gram, dataset.targets, n_folds=10, n_repeats=2, seed=seed
    )
    return result.mean_accuracy * 100.0


@pytest.fixture(scope="module")
def mutag():
    return load_dataset("MUTAG", scale=0.4, seed=0)


def test_bench_ablation_hamiltonian(mutag, benchmark):
    def run():
        return {
            kind: _accuracy(
                HAQJSKKernelA(
                    n_prototypes=32, n_levels=3, max_layers=6,
                    hamiltonian=kind, seed=0,
                ),
                mutag,
            )
            for kind in ("laplacian", "adjacency")
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    assert scores["laplacian"] > 55.0  # the paper's choice must stay usable


def test_bench_ablation_density_renormalisation(mutag, benchmark):
    def run():
        return {
            f"renormalize={flag}": _accuracy(
                HAQJSKKernelD(
                    n_prototypes=32, n_levels=3, max_layers=6,
                    renormalize_density=flag, seed=0,
                ),
                mutag,
            )
            for flag in (True, False)
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    assert scores["renormalize=True"] > 55.0


def test_bench_ablation_consistent_prototypes(mutag, benchmark):
    def run():
        return {
            f"consistent={flag}": _accuracy(
                HAQJSKKernelD(
                    n_prototypes=32, n_levels=3, max_layers=6,
                    consistent_across_k=flag, seed=0,
                ),
                mutag,
            )
            for flag in (True, False)
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    assert scores["consistent=True"] > 55.0


def test_bench_ablation_hierarchy_depth(mutag, benchmark):
    def run():
        return {
            f"H={depth}": _accuracy(
                HAQJSKKernelD(
                    n_prototypes=32, n_levels=depth, max_layers=6, seed=0
                ),
                mutag,
            )
            for depth in (1, 3, 5)
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    # The hierarchy is the paper's central mechanism: depth > 1 must not be
    # catastrophically worse than flat alignment.
    assert scores["H=5"] >= scores["H=1"] - 10.0


def test_bench_ablation_entropy_kind(mutag, benchmark):
    def run():
        return {
            kind: _accuracy(
                HAQJSKKernelD(
                    n_prototypes=32, n_levels=3, max_layers=6,
                    entropy=kind, seed=0,
                ),
                mutag,
            )
            for kind in ("shannon", "von_neumann")
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    assert scores["shannon"] > 55.0


def test_bench_ablation_prototype_count(mutag, benchmark):
    def run():
        return {
            f"M={count}": _accuracy(
                HAQJSKKernelD(
                    n_prototypes=count, n_levels=3, max_layers=6, seed=0
                ),
                mutag,
            )
            for count in (8, 32, 64)
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    assert scores["M=32"] > 55.0


def test_bench_ablation_gram_conditioning(mutag, benchmark):
    """Justifies the kernel_utils conditioning step in the CV protocol."""

    def run():
        kernel = HAQJSKKernelD(
            n_prototypes=32, n_levels=3, max_layers=6, seed=0
        )
        return {
            f"condition={flag}": _accuracy(kernel, mutag, condition=flag)
            for flag in (True, False)
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    # Conditioning must never hurt badly; on compressed Gram matrices it
    # is the difference between chance and signal (see EXPERIMENTS.md).
    assert scores["condition=True"] >= scores["condition=False"] - 5.0


def test_bench_ablation_attributed_labels(mutag, benchmark):
    """Section V future work: do vertex labels help on a labelled set?"""

    def run():
        plain = HAQJSKKernelD(
            n_prototypes=32, n_levels=3, max_layers=6, seed=0
        )
        attributed = HAQJSKAttributedD(
            n_prototypes=32, n_levels=3, max_layers=6, seed=0
        )
        return {
            "plain": _accuracy(plain, mutag),
            "attributed": _accuracy(attributed, mutag),
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(scores)
    assert scores["attributed"] > 55.0
