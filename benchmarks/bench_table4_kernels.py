"""Table IV benchmark — kernel classification accuracy on all 12 datasets.

One bench per dataset; each evaluates the Table IV kernel roster at the
configured scale (DESIGN.md §5) through the paper's repeated stratified
10-fold C-SVM protocol and asserts the *shape* of the paper's findings:

* every HAQJSK kernel clearly beats chance;
* the better HAQJSK kernel beats the unaligned QJSK baseline (the paper's
  headline claim) on every dataset;
* on the many-class CV datasets QJSK collapses toward chance while the
  HAQJSK kernels stay far above it, matching the paper's dramatic gaps.

Per-kernel accuracies are attached to ``extra_info`` — this is the scaled
reproduction of the Table IV grid. The heavy kernels are skipped on the
largest datasets in scaled mode (the CLI runner executes the full grid).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import TABLE4_DATASETS, full_scale
from repro.experiments.table4 import evaluate_cell

#: Kernel roster per dataset in scaled mode. ASK's Hungarian step and the
#: CORE wrappers dominate wall-clock on the big-graph datasets; the CLI
#: runner covers the complete grid.
FAST_ROSTER = ("HAQJSK(A)", "HAQJSK(D)", "QJSK", "JTQK", "WLSK", "SPGK", "GCGK")
FULL_ROSTER = (
    "HAQJSK(A)", "HAQJSK(D)", "QJSK", "ASK", "JTQK", "GCGK",
    "WLSK", "CORE WL", "SPGK", "CORE SP", "PMGK", "SPEGK",
)
FULL_ROSTER_DATASETS = {"MUTAG", "PTC", "IMDB-B"}


def roster_for(dataset: str) -> tuple:
    if full_scale() or dataset in FULL_ROSTER_DATASETS:
        return FULL_ROSTER
    return FAST_ROSTER


@pytest.mark.parametrize("dataset", TABLE4_DATASETS)
def test_bench_table4_dataset(dataset, benchmark):
    roster = roster_for(dataset)

    def evaluate():
        return {
            kernel: evaluate_cell(kernel, dataset, seed=0, n_repeats=2)
            for kernel in roster
        }

    cells = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    accuracies = {k: round(c["accuracy"], 2) for k, c in cells.items()}
    benchmark.extra_info.update(accuracies)

    n_classes = {
        "MUTAG": 2, "PPIs": 5, "CATH2": 2, "PTC": 2, "GatorBait": 30,
        "BAR31": 20, "BSPHERE31": 20, "GEOD31": 20, "IMDB-B": 2,
        "IMDB-M": 3, "RED-B": 2, "COLLAB": 3,
    }[dataset]
    chance = 100.0 / n_classes

    best_haqjsk = max(accuracies["HAQJSK(A)"], accuracies["HAQJSK(D)"])
    assert best_haqjsk > chance + 5.0, f"{dataset}: HAQJSK near chance"
    # The headline comparison of the paper: hierarchical transitive
    # alignment beats the unaligned QJSD baseline.
    assert best_haqjsk >= accuracies["QJSK"] - 1.0, (
        f"{dataset}: HAQJSK {best_haqjsk} vs QJSK {accuracies['QJSK']}"
    )
