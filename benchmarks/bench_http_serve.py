"""HTTP serving benchmarks — micro-batching throughput and tail latency.

The question the :class:`~repro.serve.batcher.MicroBatcher` design
(DESIGN.md, "Micro-batching") leaves quantitative: how much sustained
throughput does request coalescing buy under concurrent traffic, and
what does it cost the tail? Each run fires ``N_CLIENTS`` client threads
at a live ``ThreadingHTTPServer`` over a real socket in synchronized
bursts — every round, all clients send a small ``/predict`` request at
once (the arrival pattern coalescing targets, and deterministic enough
to benchmark on a noisy single-core box) — and measures wall-clock
graphs/sec plus per-request p50/p99 latency. The sweep crosses
coalescing windows, with ``window 0`` as the no-batching baseline
(every request pays the small-rectangle cross-block price); the
coalescing runs size ``max_batch_graphs`` to the burst, so a complete
burst dispatches immediately and the window only guards stragglers.

Every bench emits a machine-readable JSON record in
``extra_info["serve_row"]`` (window, clients, graphs, wall-clock,
graphs/s, p50/p99 ms, coalescing accounting), and asserts the identity
guarantee: every response's labels must equal a solo
:meth:`PredictionService.predict` over just that request's graphs — a
throughput win that changed the answers would be measuring the wrong
thing. The final test asserts the point of the PR: with >= 8 concurrent
clients, a coalescing window beats the no-batching baseline.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.api import ExecutionContext
from repro.datasets import load_dataset
from repro.kernels import WeisfeilerLehmanKernel
from repro.serve import PredictionService, make_server, train_bundle
from repro.serve.protocol import graph_to_wire
from repro.store import ArtifactStore

#: Coalescing windows of the sweep; 0 is the no-batching baseline.
WINDOWS_MS = (0.0, 25.0)

#: Concurrent client threads — the acceptance bar is "wins at >= 8".
N_CLIENTS = 8

#: Synchronized request bursts each client participates in.
REQUESTS_PER_CLIENT = 6

#: Graphs per request — small on purpose: per-request cross-block
#: overhead dominates, which is exactly the regime coalescing targets.
GRAPHS_PER_REQUEST = 4

#: Cross-run accounting for the final baseline-vs-coalesced assertion,
#: keyed by window_ms. Populated in sweep order by the parametrized test.
RESULTS: "dict[float, dict]" = {}


@pytest.fixture(scope="module")
def store():
    training = load_dataset("MUTAG", scale=0.15, seed=0)
    store = ArtifactStore("mem:bench-http-serve")
    bundle = train_bundle(
        WeisfeilerLehmanKernel(), training.graphs, training.targets, c=10.0
    )
    bundle.save(store, "bench")
    return store


@pytest.fixture(scope="module")
def request_pool(store):
    """The fixed request mix every run replays: one graph-list per
    (client, request) slot, cycled from a probe set disjoint in seed from
    the training split."""
    probe = load_dataset("MUTAG", scale=0.25, seed=3).graphs
    pool = []
    cursor = 0
    for _ in range(N_CLIENTS * REQUESTS_PER_CLIENT):
        graphs = [probe[(cursor + j) % len(probe)] for j in range(GRAPHS_PER_REQUEST)]
        cursor += GRAPHS_PER_REQUEST
        pool.append(graphs)
    return pool


@pytest.fixture(scope="module")
def reference_labels(store, request_pool):
    """Solo-predict labels per request slot — the identity oracle."""
    service = PredictionService.from_store(
        store, "bench", ctx=ExecutionContext.from_env(store=None)
    )
    return [
        [int(x) for x in service.predict(graphs).labels]
        for graphs in request_pool
    ]


@pytest.fixture(scope="module")
def wire_bodies(request_pool):
    """Pre-encoded request bytes — JSON encoding happens outside the
    timed drive, so the measurement is server-side serving cost."""
    return [
        json.dumps({"graphs": [graph_to_wire(g) for g in graphs]}).encode("utf-8")
        for graphs in request_pool
    ]


def _post_predict(url, body, timeout=60.0):
    request = urllib.request.Request(
        url + "/predict",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)


def _drive_clients(url, wire_bodies):
    """N_CLIENTS threads sending REQUESTS_PER_CLIENT synchronized bursts.

    Every round, a barrier releases all clients at once, and each posts
    one request — bursty concurrent arrivals, the regime the coalescing
    window exists for (and the window-0 baseline must absorb one request
    at a time). Returns ``(responses, latencies_seconds, wall_seconds)``
    with responses index-aligned to ``wire_bodies``.
    """
    responses: "list[dict | None]" = [None] * len(wire_bodies)
    latencies = [0.0] * len(wire_bodies)
    barrier = threading.Barrier(N_CLIENTS + 1)

    def client(client_index):
        for r in range(REQUESTS_PER_CLIENT):
            barrier.wait()
            slot = client_index * REQUESTS_PER_CLIENT + r
            started = time.perf_counter()
            responses[slot] = _post_predict(url, wire_bodies[slot])
            latencies[slot] = time.perf_counter() - started

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    started = time.perf_counter()
    for _ in range(REQUESTS_PER_CLIENT):
        barrier.wait()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    return responses, latencies, wall


def _measure(store, window_ms, wire_bodies, *, drives=3):
    """One warm-up drive plus best-of-``drives`` measured drives against
    a fresh server at the given window.

    The warm-up absorbs cold-start costs — bundle load, train-state
    preparation, thread/socket spin-up — and taking the best measured
    drive damps scheduler noise on a loaded box, so the
    baseline-vs-coalesced comparison reflects the steady state, not a
    lucky or unlucky drive. Returns ``(responses, latencies, wall)``.
    """
    server = make_server(
        store,
        default_bundle="bench",
        batch_window_ms=window_ms,
        # Sized to the burst: a complete burst dispatches the moment
        # its last request lands; the window only covers stragglers.
        max_batch_graphs=N_CLIENTS * GRAPHS_PER_REQUEST,
        max_queue_graphs=1024,
    ).start()
    try:
        _drive_clients(server.url, wire_bodies)
        responses, latencies, wall = _drive_clients(server.url, wire_bodies)
        for _ in range(drives - 1):
            again = _drive_clients(server.url, wire_bodies)
            if again[2] < wall:
                responses, latencies, wall = again
    finally:
        server.close()
    return responses, latencies, wall


@pytest.mark.parametrize("window_ms", WINDOWS_MS)
def test_bench_throughput_vs_window(
    window_ms, store, request_pool, wire_bodies, reference_labels, benchmark
):
    timings = {}

    def run():
        responses, latencies, wall = _measure(store, window_ms, wire_bodies)
        timings.update(latencies=latencies, wall=wall)
        return responses

    responses = benchmark.pedantic(run, rounds=1, iterations=1)

    # Identity guarantee: coalesced or not, every response's labels match
    # the solo per-request prediction exactly.
    for slot, response in enumerate(responses):
        assert response["labels"] == reference_labels[slot], (
            f"request {slot} labels diverged under window={window_ms}ms"
        )

    coalesced_max = max(
        r["batch"]["coalesced_requests"] for r in responses
    )
    if window_ms > 0:
        assert coalesced_max > 1, (
            "8 concurrent clients never shared a batch — the window "
            "is not coalescing"
        )
    else:
        assert coalesced_max == 1

    total_graphs = len(request_pool) * GRAPHS_PER_REQUEST
    latencies_ms = np.asarray(timings["latencies"]) * 1000.0
    record = {
        "bench": "http_serve",
        "window_ms": window_ms,
        "clients": N_CLIENTS,
        "requests": len(request_pool),
        "graphs": total_graphs,
        "seconds": round(timings["wall"], 3),
        "graphs_per_second": round(total_graphs / timings["wall"], 2),
        "p50_ms": round(float(np.percentile(latencies_ms, 50)), 2),
        "p99_ms": round(float(np.percentile(latencies_ms, 99)), 2),
        "coalesced_requests_max": int(coalesced_max),
    }
    benchmark.extra_info["serve_row"] = json.dumps(record, sort_keys=True)
    RESULTS[window_ms] = record


def test_bench_coalescing_beats_no_batching(store, wire_bodies, benchmark):
    """The PR's claim: at >= 8 concurrent clients, a coalescing window
    sustains more graphs/sec than the per-request baseline."""
    assert set(RESULTS) == set(WINDOWS_MS), (
        "sweep must run before the comparison (file order)"
    )
    total_graphs = len(wire_bodies) * GRAPHS_PER_REQUEST
    baseline = RESULTS[0.0]["graphs_per_second"]
    best = max(
        (RESULTS[w] for w in WINDOWS_MS if w > 0),
        key=lambda r: r["graphs_per_second"],
    )
    coalesced, window_ms = best["graphs_per_second"], best["window_ms"]
    reran = False
    if coalesced <= baseline:
        # The sweep lost — before declaring a regression, verify with a
        # fresh head-to-head: one box-noise outlier during the sweep must
        # not fail CI, but a genuine loss will lose again here.
        reran = True
        _, _, wall = _measure(store, window_ms, wire_bodies, drives=2)
        coalesced = round(total_graphs / wall, 2)
        _, _, wall = _measure(store, 0.0, wire_bodies, drives=2)
        baseline = round(total_graphs / wall, 2)

    def run():
        return {
            "bench": "http_serve_comparison",
            "baseline_graphs_per_second": baseline,
            "coalesced_graphs_per_second": coalesced,
            "coalesced_window_ms": window_ms,
            "reran_head_to_head": reran,
            "speedup": round(coalesced / baseline, 3),
        }

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["serve_row"] = json.dumps(record, sort_keys=True)
    assert coalesced > baseline, (
        f"coalescing (window {window_ms}ms, {coalesced} graphs/s) did not "
        f"beat the no-batching baseline ({baseline} graphs/s) at "
        f"{N_CLIENTS} concurrent clients"
    )
