"""Figure 2 benchmark — regenerate the hierarchical prototype construction.

Times the hierarchy fit on real DB representations and asserts the
structure the paper's figure depicts: strictly shrinking prototype counts,
every level non-empty, and coarser levels fitting the points no better
than finer ones.
"""

from __future__ import annotations

from repro.experiments.figure2 import run_figure2


def test_bench_figure2_hierarchy(once, benchmark):
    result = once(run_figure2, n_prototypes=16, n_levels=3, seed=0)
    levels = result["levels"]
    benchmark.extra_info.update(
        {f"level_{row['Level h']}_prototypes": row["Prototypes |P^h|"] for row in levels}
    )

    sizes = [row["Prototypes |P^h|"] for row in levels]
    assert sizes == sorted(sizes, reverse=True)
    assert all(row["Occupied"] >= 1 for row in levels)
    inertias = [row["Inertia"] for row in levels]
    assert inertias == sorted(inertias)
    assert "#" in result["ascii"]
