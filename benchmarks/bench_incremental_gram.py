"""Incremental-Gram benchmarks — extend cost scales O(N·ΔN), not O((N+ΔN)²).

The serving scenario behind :meth:`GraphKernel.gram_extend`: a reference
collection of ``N`` graphs with a cached Gram, and ``ΔN`` newcomers
arriving. A from-scratch recompute evaluates ``(N+ΔN)(N+ΔN+1)/2`` pairs;
the extension evaluates only the ``N·ΔN`` cross pairs plus the
``ΔN(ΔN+1)/2`` new diagonal pairs. Two demonstrations:

* an *exact pair budget* check — a counting kernel run through the serial
  backend proves the extension path evaluates precisely the predicted
  pair count (this is the scaling claim, independent of timer noise);
* wall-clock benches per kernel (QJSK, JTQK, frozen-prototype
  HAQJSK(D)) recording the measured extend/full speedup and the
  theoretical pair-budget ratio in ``extra_info``.

Every bench also asserts the extended Gram agrees with the from-scratch
matrix to 1e-10, so running the file under ``--benchmark-disable`` (CI)
doubles as a correctness smoke test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.kernels import HAQJSKKernelD, JensenTsallisQKernel, QJSKUnaligned

#: Agreement tolerance pinned by the ISSUE acceptance criteria.
ATOL = 1e-10

#: Newcomers per arrival batch (ΔN).
DELTA = 8


def _pair_budget(n_old: int, n_new: int) -> dict:
    """Predicted pair evaluations for extend vs from-scratch recompute."""
    total = n_old + n_new
    return {
        "extend_pairs": n_old * n_new + n_new * (n_new + 1) // 2,
        "full_pairs": total * (total + 1) // 2,
    }


@pytest.fixture(scope="module")
def reference_graphs():
    dataset = load_dataset("MUTAG", scale=0.25, seed=0)
    return dataset.graphs


@pytest.fixture(scope="module")
def newcomer_graphs():
    # A different seed yields genuinely unseen arrivals; the stratified
    # subsample keeps both classes represented instead of whichever
    # happens to be stored first.
    dataset = load_dataset("MUTAG", scale=0.08, seed=7)
    return dataset.subsample(DELTA, seed=7).graphs


def _kernels(reference):
    """The bench roster; the HAQJSK entry is frozen on the reference set."""
    frozen = HAQJSKKernelD(n_prototypes=16, n_levels=2, max_layers=4, seed=0)
    frozen.freeze(reference)
    return {
        "QJSK": QJSKUnaligned(),
        "JTQK": JensenTsallisQKernel(n_iterations=3),
        "HAQJSK(D)-frozen": frozen,
    }


class _CountingQJSK(QJSKUnaligned):
    """QJSK that counts its pair evaluations (serial backend only)."""

    def __init__(self):
        super().__init__()
        self.pair_calls = 0

    def pair_value(self, state_a, state_b) -> float:
        self.pair_calls += 1
        return super().pair_value(state_a, state_b)


def test_extend_pair_budget_is_n_times_delta(reference_graphs, newcomer_graphs):
    """The scaling claim, exactly: extend evaluates N·ΔN + ΔN(ΔN+1)/2 pairs."""
    kernel = _CountingQJSK()
    cached = kernel.gram(reference_graphs, engine="serial")
    n_old, n_new = len(reference_graphs), len(newcomer_graphs)
    budget = _pair_budget(n_old, n_new)
    assert kernel.pair_calls == n_old * (n_old + 1) // 2

    kernel.pair_calls = 0
    extended = kernel.gram_extend(
        cached, reference_graphs, newcomer_graphs, engine="serial"
    )
    assert kernel.pair_calls == budget["extend_pairs"]
    assert kernel.pair_calls < budget["full_pairs"]

    kernel.pair_calls = 0
    full = kernel.gram(
        list(reference_graphs) + list(newcomer_graphs), engine="serial"
    )
    assert kernel.pair_calls == budget["full_pairs"]
    assert np.allclose(extended, full, atol=ATOL, rtol=0.0)


def test_extend_budget_grows_linearly_in_n(reference_graphs, newcomer_graphs):
    """Doubling N doubles the extend budget but quadruples the full one."""
    half = len(reference_graphs) // 2
    small, large = reference_graphs[:half], reference_graphs[: 2 * half]
    kernel = _CountingQJSK()

    def extend_cost(reference):
        kernel.pair_calls = 0
        cached = kernel.gram(reference, engine="serial")
        kernel.pair_calls = 0
        kernel.gram_extend(cached, reference, newcomer_graphs, engine="serial")
        return kernel.pair_calls

    cost_small, cost_large = extend_cost(small), extend_cost(large)
    # Linear in N: the ΔN-only diagonal term is the constant offset.
    diagonal = DELTA * (DELTA + 1) // 2
    assert cost_large - diagonal == 2 * (cost_small - diagonal)


@pytest.mark.parametrize("name", ["QJSK", "JTQK", "HAQJSK(D)-frozen"])
def test_bench_gram_extend(name, reference_graphs, newcomer_graphs, benchmark):
    kernel = _kernels(reference_graphs)[name]
    cached = kernel.gram(reference_graphs)
    extended = benchmark.pedantic(
        kernel.gram_extend,
        args=(cached, reference_graphs, newcomer_graphs),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    full = kernel.gram(list(reference_graphs) + list(newcomer_graphs))
    assert np.allclose(extended, full, atol=ATOL, rtol=0.0), name
    budget = _pair_budget(len(reference_graphs), len(newcomer_graphs))
    benchmark.extra_info.update(budget)
    benchmark.extra_info["pair_budget_ratio"] = (
        budget["full_pairs"] / budget["extend_pairs"]
    )


@pytest.mark.parametrize("name", ["QJSK", "JTQK", "HAQJSK(D)-frozen"])
def test_bench_full_recompute(name, reference_graphs, newcomer_graphs, benchmark):
    """The baseline the extension path is saving over."""
    kernel = _kernels(reference_graphs)[name]
    combined = list(reference_graphs) + list(newcomer_graphs)
    gram = benchmark.pedantic(
        kernel.gram, args=(combined,), rounds=3, iterations=1, warmup_rounds=1
    )
    assert gram.shape == (len(combined), len(combined))


def test_bench_warm_restart_from_store(
    reference_graphs, newcomer_graphs, tmp_path, benchmark
):
    """Serving restart: the reference Gram reloads from disk, not recomputed."""
    from repro.store import ArtifactStore, IncrementalGram

    store = ArtifactStore(str(tmp_path / "store"))
    kernel = QJSKUnaligned()
    first = IncrementalGram(kernel, reference_graphs, store=store)
    first.extend(newcomer_graphs)

    def restart():
        # A fresh process over the same reference set: Gram comes from disk.
        return IncrementalGram(QJSKUnaligned(), reference_graphs, store=store)

    restarted = benchmark.pedantic(restart, rounds=3, iterations=1)
    assert np.allclose(
        restarted.gram,
        first.gram[: len(reference_graphs), : len(reference_graphs)],
        atol=ATOL,
        rtol=0.0,
    )
    grown = restarted.extend(newcomer_graphs)
    assert np.allclose(grown, first.gram, atol=ATOL, rtol=0.0)
