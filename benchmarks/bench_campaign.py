"""Campaign-layer benchmarks — scheduling overhead and resume skip rate.

The campaign runner routes every node through a durable sqlite job queue
(DESIGN.md, "Campaign node keys"), so each executed node costs a handful
of transactions: submit, claim, mark running, mark done, complete. These
benches put a number on that overhead with no-op executors:

* cold scheduling throughput — nodes/s through ensure → submit → claim →
  execute → record on one sqlite file;
* resume skip rate — nodes/s when every node is already ``done`` and the
  run only restores recorded state;
* cross-campaign key reuse — nodes/s when results are adopted from
  another campaign's identical content keys.

Each bench emits a machine-readable JSON record in
``extra_info["campaign_row"]``; the overhead is the floor under real
campaigns, whose Gram/CV nodes cost seconds each.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.campaign import (
    Campaign,
    CampaignDB,
    CampaignNode,
    CampaignRunner,
    node_key,
    register_executor,
)

#: Synthetic campaign size: enough transactions to measure, < 1 s wall.
N_NODES = 64


@register_executor("bench.noop")
def _noop(payload, ctx):
    return {"value": payload["value"]}


def _campaign(name: str, *, chained: bool = False) -> Campaign:
    nodes = []
    for index in range(N_NODES):
        nodes.append(
            CampaignNode(
                f"n{index:03d}",
                "bench.noop",
                node_key("bench.noop", params={"i": index}),
                payload={"value": index},
                deps=(f"n{index - 1:03d}",) if chained and index else (),
            )
        )
    return Campaign(name, nodes)


def _timed_run(runner):
    started = time.perf_counter()
    run = runner.run()
    return run, time.perf_counter() - started


@pytest.mark.parametrize("shape", ["flat", "chained"])
def test_bench_cold_scheduling_throughput(shape, benchmark, tmp_path_factory):
    timings = {}

    def run():
        db = CampaignDB(str(tmp_path_factory.mktemp("sched") / "campaign.db"))
        try:
            run, seconds = _timed_run(
                CampaignRunner(_campaign(f"bench-{shape}", chained=shape == "chained"), db)
            )
            timings["seconds"] = seconds
            return run
        finally:
            db.close()

    run = benchmark.pedantic(run, rounds=1, iterations=1)
    assert run.ok and run.executed == N_NODES
    record = {
        "bench": "cold",
        "shape": shape,
        "nodes": N_NODES,
        "seconds": round(timings["seconds"], 4),
        "nodes_per_second": round(N_NODES / timings["seconds"], 1),
    }
    benchmark.extra_info["campaign_row"] = json.dumps(record, sort_keys=True)


def test_bench_resume_skip_rate(benchmark, tmp_path_factory):
    db = CampaignDB(str(tmp_path_factory.mktemp("resume") / "campaign.db"))
    try:
        CampaignRunner(_campaign("bench-resume"), db).run()

        def resume():
            run, seconds = _timed_run(
                CampaignRunner(_campaign("bench-resume"), db)
            )
            resume.seconds = seconds
            return run

        run = benchmark.pedantic(resume, rounds=1, iterations=1)
        assert run.ok and run.executed == 0 and run.restored == N_NODES
        record = {
            "bench": "resume",
            "nodes": N_NODES,
            "seconds": round(resume.seconds, 4),
            "nodes_per_second": round(N_NODES / resume.seconds, 1),
        }
        benchmark.extra_info["campaign_row"] = json.dumps(record, sort_keys=True)
    finally:
        db.close()


def test_bench_cross_campaign_key_reuse(benchmark, tmp_path_factory):
    db = CampaignDB(str(tmp_path_factory.mktemp("reuse") / "campaign.db"))
    try:
        CampaignRunner(_campaign("bench-donor"), db).run()

        def adopt():
            run, seconds = _timed_run(
                CampaignRunner(_campaign("bench-adopter"), db)
            )
            adopt.seconds = seconds
            return run

        run = benchmark.pedantic(adopt, rounds=1, iterations=1)
        assert run.ok and run.executed == 0 and run.reused == N_NODES
        record = {
            "bench": "reuse",
            "nodes": N_NODES,
            "seconds": round(adopt.seconds, 4),
            "nodes_per_second": round(N_NODES / adopt.seconds, 1),
        }
        benchmark.extra_info["campaign_row"] = json.dumps(record, sort_keys=True)
    finally:
        db.close()
