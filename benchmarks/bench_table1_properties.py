"""Table I benchmark — empirical verification of the kernel property matrix.

Regenerates the paper's Table I claims as *measurements*: PSD-ness of the
Gram matrix, permutation invariance, and alignment transitivity, for the
HAQJSK kernels and the baselines they are contrasted with. The assertions
encode the paper's qualitative table; the timings show the verification
cost.
"""

from __future__ import annotations

from repro.experiments.properties import (
    haqjsk_alignment_transitive,
    min_gram_eigenvalue,
    permutation_deviation,
    probe_dataset,
    run_properties,
    umeyama_alignment_transitive,
)


def test_bench_table1_property_matrix(once):
    rows = once(run_properties, seed=0)
    by_name = {row["Kernel"]: row for row in rows}

    # HAQJSK: PD + permutation invariant + transitive (the paper's claim).
    for name in ("HAQJSK(A)", "HAQJSK(D)"):
        assert float(by_name[name]["min Gram eig"]) > -1e-7
        assert float(by_name[name]["Perm. dev"]) < 1e-9
        assert by_name[name]["Transitive"] == "Yes"

    # QJSK: not permutation invariant (paper Section II-D).
    assert float(by_name["QJSK"]["Perm. dev"]) > 1e-9

    # Pairwise aligners are aligned but not transitive.
    for name in ("ASK", "SPEGK", "PMGK"):
        assert by_name[name]["Aligned"] == "Yes"
        assert by_name[name]["Transitive"] in ("No", "-")


def test_bench_table1_transitivity_detail(once):
    graphs = probe_dataset(seed=1).graphs

    def measure():
        return {
            "haqjsk_transitive": haqjsk_alignment_transitive(graphs, seed=1),
            "umeyama_transitive": umeyama_alignment_transitive(graphs, seed=1),
        }

    result = once(measure)
    assert result["haqjsk_transitive"] is True
    # Umeyama matchings fail to compose on generic graph sets; if this ever
    # starts passing the probe set is too symmetric to be informative.
    assert result["umeyama_transitive"] is False


def test_bench_table1_psd_margins(benchmark):
    graphs = probe_dataset(seed=2).graphs

    def measure():
        return {
            name: min_gram_eigenvalue(name, graphs, seed=2)
            for name in ("HAQJSK(A)", "HAQJSK(D)", "WLSK", "SPGK")
        }

    margins = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update({k: f"{v:.3e}" for k, v in margins.items()})
    for name, value in margins.items():
        assert value > -1e-7, name


def test_bench_table1_permutation_invariance(benchmark):
    graphs = probe_dataset(seed=3).graphs

    def measure():
        return {
            name: permutation_deviation(name, graphs, seed=3)
            for name in ("HAQJSK(A)", "HAQJSK(D)", "QJSK")
        }

    deviations = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update({k: f"{v:.3e}" for k, v in deviations.items()})
    assert deviations["HAQJSK(A)"] < 1e-9
    assert deviations["HAQJSK(D)"] < 1e-9
    assert deviations["QJSK"] > 1e-9
